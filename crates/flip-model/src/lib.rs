//! The **Flip model** of communication from *Breathe before Speaking:
//! Efficient Information Dissemination despite Noisy, Limited and Anonymous
//! Communication* (Feinerman, Haeupler, Korman; PODC 2014).
//!
//! The model (paper §1.3) consists of `n` anonymous agents proceeding in
//! synchronous rounds.  In every round each agent may either *wait* (send
//! nothing) or *push* a single-bit message to another agent chosen uniformly
//! at random; neither side learns the other's identity.  If several messages
//! reach the same agent in one round, the recipient accepts exactly one of
//! them, chosen uniformly at random, and the rest are dropped.  Every accepted
//! bit is flipped independently with probability at most `1/2 − ε`
//! (a binary symmetric channel).
//!
//! This crate is the *substrate* on which the paper's protocols (crate
//! `breathe`) and the comparison baselines (crate `baselines`) run.  It knows
//! nothing about any particular protocol: protocols are per-agent state
//! machines implementing the [`Agent`] trait, and the [`Simulation`] engine
//! applies the push-gossip routing, collision and noise semantics.
//!
//! Three engine families execute the model, selected by [`Backend`]: the
//! per-agent [`Simulation`] (the exact reference semantics), the counts-based
//! [`DenseSimulation`]/[`StratifiedSimulation`] — homogeneous protocols
//! ([`DenseProtocol`]) and stratified heterogeneous ones
//! ([`StratifiedProtocol`]) in `O(#strata × #states)` per round, reaching
//! populations of `10⁶`–`10⁷` agents — and the [`HybridSimulation`], which
//! runs `k` tracked agents exactly against a dense bulk.  See the
//! [`dense`](DenseSimulation), [`stratified`](StratifiedSimulation) and
//! [`hybrid`](HybridSimulation) module documentation for the equivalence
//! contract between them.
//!
//! # Example
//!
//! A tiny "everyone repeats what they last heard" protocol:
//!
//! ```
//! use flip_model::{
//!     Agent, BinarySymmetricChannel, Opinion, OpinionDelta, Round, SimRng, Simulation,
//!     SimulationConfig,
//! };
//!
//! struct Parrot {
//!     opinion: Option<Opinion>,
//! }
//!
//! impl Agent for Parrot {
//!     fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
//!         self.opinion
//!     }
//!     fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
//!         let before = self.opinion;
//!         self.opinion = Some(message);
//!         OpinionDelta::between(before, self.opinion)
//!     }
//!     fn opinion(&self) -> Option<Opinion> {
//!         self.opinion
//!     }
//! }
//!
//! # fn main() -> Result<(), flip_model::FlipError> {
//! let mut agents: Vec<Parrot> = (0..100).map(|_| Parrot { opinion: None }).collect();
//! agents[0].opinion = Some(Opinion::One); // a single informed agent
//!
//! let channel = BinarySymmetricChannel::from_epsilon(0.3)?;
//! let config = SimulationConfig::new(100).with_seed(7);
//! let mut sim = Simulation::new(agents, channel, config)?;
//! sim.run(200);
//! assert!(sim.census().active() > 90);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `pool` module (and only it) carries a
// reviewed `#![allow(unsafe_code)]` for the scoped-task erasure behind
// [`RoundPool`]; every other module remains statically unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod backend;
mod channel;
mod clock;
mod config;
mod dense;
mod dense_protocols;
mod engine;
mod error;
mod faults;
mod hybrid;
mod metrics;
mod opinion;
mod pool;
mod population;
mod rng;
mod scheduler;
mod stratified;
mod trace;

pub use agent::{Agent, AgentId, OpinionDelta, Round};
pub use backend::{Backend, DEFAULT_HYBRID_TRACKED};
pub use channel::{AdversarialCapChannel, BinarySymmetricChannel, Channel, NoiselessChannel};
pub use clock::{ClockModel, LocalClock};
pub use config::SimulationConfig;
pub use dense::{DensePopulation, DenseProtocol, DenseSimulation, OpinionBitmap};
pub use dense_protocols::{
    MajoritySamplerProtocol, RumorAgent, RumorProtocol, VoterProtocol, ZealotAgent,
    ZealotRumorProtocol,
};
pub use engine::{RoundSummary, Simulation};
pub use error::FlipError;
pub use faults::{AdversarialSchedule, FaultKind, FaultPlan, FaultRole, FaultSpec};
pub use hybrid::HybridSimulation;
pub use metrics::{Metrics, RoundMetrics};
pub use opinion::Opinion;
pub use pool::{RoundPool, MAX_WORKERS};
pub use population::{majority_bias, Census};
pub use rng::{BernoulliSkip, SimRng};
pub use scheduler::{Delivery, GossipScheduler, RoundRouting, RADIX_BUCKET_BITS, RADIX_MIN_N};
pub use stratified::{StratifiedPopulation, StratifiedProtocol, StratifiedSimulation};
pub use telemetry::{
    Event, NullSink, Phase, PhaseProfile, PhaseSpan, PhaseStat, Recorder, Telemetry, TelemetrySink,
};
pub use trace::{TraceOptions, TraceRecorder};
