//! Execution traces: activation times and per-round population snapshots.

use crate::agent::Round;
use crate::opinion::Opinion;
use crate::population::Census;

/// What the [`TraceRecorder`] should collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceOptions {
    /// Record a [`Census`]-derived snapshot of the population after every round.
    pub record_history: bool,
    /// Record the round in which each agent first received a message.
    pub record_activations: bool,
}

/// One per-round snapshot of the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Round after which the snapshot was taken.
    pub round: Round,
    /// Number of agents holding any opinion.
    pub active: usize,
    /// Number of agents holding the reference ("correct") opinion, if a
    /// reference was configured.
    pub correct: Option<usize>,
    /// Messages sent during the round.
    pub messages_sent: u64,
}

/// Records activation times and optional per-round population history.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    options: TraceOptions,
    reference: Option<Opinion>,
    activation_round: Vec<Option<Round>>,
    history: Vec<Snapshot>,
}

impl TraceRecorder {
    /// Creates a recorder for a population of `n` agents.
    #[must_use]
    pub fn new(n: usize, options: TraceOptions, reference: Option<Opinion>) -> Self {
        let activation_round = if options.record_activations {
            vec![None; n]
        } else {
            Vec::new()
        };
        Self {
            options,
            reference,
            activation_round,
            history: Vec::new(),
        }
    }

    /// The options this recorder was created with.
    #[must_use]
    pub fn options(&self) -> TraceOptions {
        self.options
    }

    /// Notes that `agent` received a message in `round` (first one wins).
    pub fn on_delivery(&mut self, agent: usize, round: Round) {
        if self.options.record_activations {
            if let Some(slot) = self.activation_round.get_mut(agent) {
                if slot.is_none() {
                    *slot = Some(round);
                }
            }
        }
    }

    /// Records an end-of-round snapshot from a census.
    pub fn on_round_end(&mut self, round: Round, census: &Census, messages_sent: u64) {
        if self.options.record_history {
            self.history.push(Snapshot {
                round,
                active: census.active(),
                correct: self.reference.map(|r| census.holding(r)),
                messages_sent,
            });
        }
    }

    /// Round in which `agent` was first delivered a message, if recorded.
    #[must_use]
    pub fn activation_round(&self, agent: usize) -> Option<Round> {
        self.activation_round.get(agent).copied().flatten()
    }

    /// All recorded activation rounds (empty unless activation tracing was enabled).
    #[must_use]
    pub fn activation_rounds(&self) -> &[Option<Round>] {
        &self.activation_round
    }

    /// The recorded per-round history (empty unless history tracing was enabled).
    #[must_use]
    pub fn history(&self) -> &[Snapshot] {
        &self.history
    }

    /// First round after which at least `threshold` agents were active, if any.
    #[must_use]
    pub fn round_reaching_active(&self, threshold: usize) -> Option<Round> {
        self.history
            .iter()
            .find(|s| s.active >= threshold)
            .map(|s| s.round)
    }

    /// First round after which at least `threshold` agents held the reference
    /// opinion, if a reference was configured and history recorded.
    #[must_use]
    pub fn round_reaching_correct(&self, threshold: usize) -> Option<Round> {
        self.history
            .iter()
            .find(|s| s.correct.is_some_and(|c| c >= threshold))
            .map(|s| s.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_options() -> TraceOptions {
        TraceOptions {
            record_history: true,
            record_activations: true,
        }
    }

    #[test]
    fn first_delivery_wins() {
        let mut trace = TraceRecorder::new(3, full_options(), None);
        trace.on_delivery(1, 4);
        trace.on_delivery(1, 9);
        assert_eq!(trace.activation_round(1), Some(4));
        assert_eq!(trace.activation_round(0), None);
        assert_eq!(trace.activation_round(99), None);
    }

    #[test]
    fn disabled_activation_tracing_records_nothing() {
        let mut trace = TraceRecorder::new(3, TraceOptions::default(), None);
        trace.on_delivery(1, 4);
        assert_eq!(trace.activation_round(1), None);
        assert!(trace.activation_rounds().is_empty());
    }

    #[test]
    fn history_records_census_and_reference() {
        let mut trace = TraceRecorder::new(4, full_options(), Some(Opinion::One));
        let census = Census::from_counts(1, 2, 4);
        trace.on_round_end(0, &census, 7);
        assert_eq!(trace.history().len(), 1);
        let snap = trace.history()[0];
        assert_eq!(snap.active, 3);
        assert_eq!(snap.correct, Some(2));
        assert_eq!(snap.messages_sent, 7);
    }

    #[test]
    fn threshold_queries_scan_history() {
        let mut trace = TraceRecorder::new(4, full_options(), Some(Opinion::One));
        trace.on_round_end(0, &Census::from_counts(1, 1, 4), 1);
        trace.on_round_end(1, &Census::from_counts(1, 3, 4), 1);
        assert_eq!(trace.round_reaching_active(4), Some(1));
        assert_eq!(trace.round_reaching_active(5), None);
        assert_eq!(trace.round_reaching_correct(3), Some(1));
        assert_eq!(trace.round_reaching_correct(4), None);
    }

    #[test]
    fn history_disabled_means_no_snapshots() {
        let mut trace = TraceRecorder::new(4, TraceOptions::default(), None);
        trace.on_round_end(0, &Census::from_counts(1, 1, 4), 1);
        assert!(trace.history().is_empty());
        assert_eq!(trace.round_reaching_active(1), None);
    }
}
