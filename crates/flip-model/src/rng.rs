//! Deterministic random number generation for simulations.
//!
//! [`SimRng`] is the hot-path generator: a counter-mixed SplitMix64 core
//! (vendored in `vendor/rand` as [`rand::split_mix64`]) with batched refill
//! ([`SimRng::fill_u64`]), a Lemire nearly-divisionless bounded sampler
//! ([`SimRng::gen_index`]) and the geometric skip-sampler
//! ([`BernoulliSkip`]) that lets the engine fuse channel noise into routing.

use rand::{split_mix64, RngCore, GOLDEN_GAMMA};

/// `1 / 2^53`, for converting 53 random mantissa bits into a unit f64.
const UNIT_F64: f64 = 1.0 / (1u64 << 53) as f64;

/// The random number generator threaded through every simulation.
///
/// All randomness in a [`Simulation`](crate::Simulation) — protocol coin
/// flips, gossip recipient choices, collision resolution and channel noise —
/// is derived from a single `SimRng` seeded by the caller, so that every run
/// is exactly reproducible from its seed.
///
/// The core is a SplitMix64 counter generator: output `k` of a stream is
/// `split_mix64(origin + k·γ)`, two multiplies and a handful of xor-shifts
/// with the whole state in one register.  Because outputs carry no loop-borne
/// data dependency beyond the counter increment, [`SimRng::fill_u64`]
/// generates batches at full instruction-level parallelism, and single draws
/// ([`next_u64`](RngCore::next_u64)) are branch-free.
///
/// # Example
///
/// ```
/// use flip_model::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::from_seed(1);
/// let mut b = SimRng::from_seed(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    /// The counter: the raw (pre-mix) argument of the last word produced.
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        // Scramble the seed (murmur3-style finalizer, distinct from the
        // SplitMix64 output mix) so that nearby seeds land in counter
        // positions astronomically far apart.
        let mut z = seed ^ 0x1F0A_2BE7_1D4C_9E85;
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^= z >> 33;
        Self { state: z }
    }

    /// Derives the seed of an independent child stream from a master seed:
    /// the mixer shared by [`SimRng::fork`] and the experiment harness's
    /// per-trial seed derivation, so "one master seed, many well-separated
    /// streams" has exactly one definition in the workspace.
    #[must_use]
    pub fn stream_seed(master: u64, stream: u64) -> u64 {
        split_mix64(master ^ stream.wrapping_mul(GOLDEN_GAMMA))
    }

    /// Derives an independent child generator for a named stream.
    ///
    /// Useful when running many trials in parallel from one master seed: each
    /// trial gets `master.fork(trial_index)` and the streams do not interact.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::from_seed(Self::stream_seed(base, stream))
    }

    /// Fills `dest` with random words in one batched pass.
    ///
    /// Counter-based generation: word `i` is `split_mix64(base + (i+1)·γ)`,
    /// with no dependency between loop iterations, so the mixes of adjacent
    /// words overlap in the pipeline.  The stream is identical to calling
    /// [`next_u64`](RngCore::next_u64) `dest.len()` times.
    pub fn fill_u64(&mut self, dest: &mut [u64]) {
        let base = self.state;
        for (i, slot) in dest.iter_mut().enumerate() {
            *slot = split_mix64(base.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN_GAMMA)));
        }
        self.state = base.wrapping_add((dest.len() as u64).wrapping_mul(GOLDEN_GAMMA));
    }

    /// Reserves a block of `count` words from the stream and returns its
    /// counter base: word `i` of the block is
    /// `split_mix64(base + (i + 1)·γ)`, exactly the words
    /// [`SimRng::fill_u64`] would have written into a `count`-sized buffer.
    ///
    /// This is the allocation-free form of `fill_u64` for consumers that
    /// can re-mix words on the fly (the gossip scheduler's routing passes
    /// recompute a message's word wherever they need it instead of storing
    /// a population-sized word buffer): the generator state advances past
    /// the block immediately, so interleaved single draws
    /// ([`next_u64`](RngCore::next_u64), e.g. Lemire rejection redraws)
    /// continue the stream identically to the buffered version.
    #[must_use]
    pub fn reserve_block(&mut self, count: usize) -> u64 {
        let base = self.state;
        self.state = base.wrapping_add((count as u64).wrapping_mul(GOLDEN_GAMMA));
        base
    }

    /// Word `i` of a block reserved with [`SimRng::reserve_block`].
    #[inline(always)]
    #[must_use]
    pub fn block_word(base: u64, i: usize) -> u64 {
        split_mix64(base.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN_GAMMA)))
    }

    /// Draws a uniform index in `[0, bound)` with Lemire's nearly-divisionless
    /// method: one multiply and one compare on the common path, the modulo
    /// confined to a rejection branch of probability `bound / 2^64`.
    ///
    /// For a bound sampled many times, cache the rejection threshold instead
    /// of recomputing it: [`rand::distributions::UniformIndex`] is the
    /// reusable 64-bit form, and the gossip scheduler inlines the same
    /// technique at 32 bits for its recipient draws.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `bound` is zero.
    #[inline]
    #[must_use]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "cannot sample an empty range");
        rand::sample_below(self, bound as u64) as usize
    }

    /// A uniform f64 in the half-open interval `(0, 1]` (never zero, so it is
    /// safe to take its logarithm).
    #[inline]
    #[must_use]
    pub fn f64_open01(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * UNIT_F64
    }

    /// Returns `true` with the given probability.
    ///
    /// Out-of-range probabilities are clamped: `p ≤ 0` never fires and
    /// `p ≥ 1` always fires.
    #[must_use]
    pub fn chance(&mut self, probability: f64) -> bool {
        if probability <= 0.0 {
            false
        } else if probability >= 1.0 {
            true
        } else {
            (self.next_u64() >> 11) as f64 * UNIT_F64 < probability
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        split_mix64(self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// `ln(x)` for `x ∈ (0, 1]`, accurate to ~10⁻¹⁰, inlined and branch-light.
///
/// Splits `x` into mantissa and exponent, reduces the mantissa to
/// `[0.75, 1.5)` and evaluates the atanh series of `ln m` (with
/// `t = (m−1)/(m+1)`, `|t| ≤ 0.2`, seven terms).  The libm `ln` costs ~8 ns
/// per call through its function-call boundary; this runs in roughly half
/// that and inlines into the skip-sampling loop.
#[inline]
fn ln_unit(x: f64) -> f64 {
    const MANTISSA_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
    const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;
    let bits = x.to_bits();
    let exponent = ((bits >> 52) as i64 - 1023) as f64;
    let mantissa = f64::from_bits((bits & MANTISSA_MASK) | ONE_BITS);
    // Reduce to [0.75, 1.5) (select, not branch: the predicate is random).
    let reduce = mantissa >= 1.5;
    let m = if reduce { 0.5 * mantissa } else { mantissa };
    let e = exponent + f64::from(u8::from(reduce));
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // Plain mul/add Horner (f64::mul_add would fall back to a libm call on
    // targets without native FMA, costing more than it saves).
    let series = 1.0
        + t2 * (1.0 / 3.0
            + t2 * (1.0 / 5.0
                + t2 * (1.0 / 7.0
                    + t2 * (1.0 / 9.0
                        + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0 + t2 * (1.0 / 15.0)))))));
    2.0 * t * series + e * std::f64::consts::LN_2
}

/// A geometric skip-sampler over a stream of i.i.d. Bernoulli(`p`) trials.
///
/// Instead of drawing one Bernoulli per trial, the sampler draws the *gap*
/// until the next success directly: `K = ⌊ln U / ln(1−p)⌋` with
/// `U ∈ (0, 1]` is exactly geometrically distributed, so walking a stream by
/// `K` failures, one success, `K'` failures, … reproduces the i.i.d.
/// Bernoulli process while spending one `ln` per *success* instead of one
/// draw per *trial*.  The engine uses this to fuse fixed-crossover channel
/// noise into message delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliSkip {
    /// `1 / ln(1 − p)` (negative, since `p ∈ (0, 1)`).
    inv_ln_keep: f64,
}

impl BernoulliSkip {
    /// Creates a skip-sampler for success probability `p`.
    ///
    /// Returns `None` when successes are impossible to represent: `p ≤ 0`,
    /// or `p` so small that `1 − p` rounds to `1.0` (a gap beyond any
    /// realistic stream length).  `p ≥ 1` is rejected as well — a
    /// probability-one success needs no sampler.
    #[must_use]
    pub fn new(p: f64) -> Option<Self> {
        if !(0.0..1.0).contains(&p) {
            return None;
        }
        let ln_keep = (1.0 - p).ln();
        if ln_keep == 0.0 {
            // p = 0, p = −0.0, or p subnormal/tiny enough that `1 − p`
            // rounds to exactly 1.0: a sampler would turn `1 / ln(1)` into
            // infinite gaps, so "no successes, ever" is expressed as "no
            // sampler" instead and callers skip the stream without drawing.
            return None;
        }
        // For every accepted p, ln(1 − p) is strictly negative and finite
        // (p < 1 keeps the argument ≥ the smallest normal above 0), so gaps
        // can never be NaN or negative.
        debug_assert!(ln_keep < 0.0 && ln_keep.is_finite());
        Some(Self {
            inv_ln_keep: ln_keep.recip(),
        })
    }

    /// Draws the number of failures before the next success (possibly zero).
    ///
    /// Values beyond `usize::MAX` saturate, which callers read as "no success
    /// within any stream this process can hold".
    #[inline]
    #[must_use]
    pub fn gap(&self, rng: &mut SimRng) -> usize {
        // U ∈ (0, 1] keeps ln finite; the f64→usize cast saturates.
        (ln_unit(rng.f64_open01()) * self.inv_ln_keep) as usize
    }

    /// Calls `on_success` with the index of every success in a stream of
    /// `stream_len` i.i.d. Bernoulli(`p`) trials, in increasing order.
    ///
    /// Gaps are drawn in small batches: successive success positions form a
    /// serial chain, but the logarithms behind the gaps do not depend on the
    /// positions, so evaluating a batch ahead of the walk lets them pipeline
    /// instead of serialising on the `ln` latency.  (A batch may overshoot
    /// the stream; the spare draws simply advance the RNG, which keeps the
    /// stream deterministic for a given seed and call sequence.)
    pub fn for_each_success(
        &self,
        rng: &mut SimRng,
        stream_len: usize,
        mut on_success: impl FnMut(usize),
    ) {
        const BATCH: usize = 16;
        let mut position = 0usize;
        let mut stride = 0usize; // 0 before the first success, 1 after
        loop {
            let mut gaps = [0usize; BATCH];
            for gap in &mut gaps {
                *gap = self.gap(rng);
            }
            for &gap in &gaps {
                position = position.saturating_add(stride).saturating_add(gap);
                stride = 1;
                if position >= stream_len {
                    return;
                }
                on_success(position);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(99);
        let mut b = SimRng::from_seed(99);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fill_u64_produces_exactly_the_single_draw_stream() {
        let mut batched = SimRng::from_seed(7);
        let mut single = SimRng::from_seed(7);
        let mut buf = vec![0u64; 100];
        batched.fill_u64(&mut buf);
        for (i, &word) in buf.iter().enumerate() {
            assert_eq!(word, single.next_u64(), "word {i}");
        }
        // And the streams stay aligned after the batch.
        for _ in 0..16 {
            assert_eq!(batched.next_u64(), single.next_u64());
        }
    }

    #[test]
    fn reserve_block_matches_fill_u64_exactly() {
        let mut buffered = SimRng::from_seed(7);
        let mut reserved = SimRng::from_seed(7);
        let mut buf = vec![0u64; 57];
        buffered.fill_u64(&mut buf);
        let base = reserved.reserve_block(57);
        for (i, &word) in buf.iter().enumerate() {
            assert_eq!(word, SimRng::block_word(base, i), "word {i}");
        }
        // Streams stay aligned after the block on both sides.
        for _ in 0..16 {
            assert_eq!(buffered.next_u64(), reserved.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut master1 = SimRng::from_seed(5);
        let mut master2 = SimRng::from_seed(5);
        let mut c1 = master1.fork(3);
        let mut c2 = master2.fork(3);
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forked_streams_diverge_by_stream_id() {
        let mut master = SimRng::from_seed(5);
        let mut c1 = master.fork(1);
        let mut master = SimRng::from_seed(5);
        let mut c2 = master.fork(2);
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_seed_is_deterministic_and_separating() {
        assert_eq!(SimRng::stream_seed(1, 2), SimRng::stream_seed(1, 2));
        assert_ne!(SimRng::stream_seed(1, 2), SimRng::stream_seed(1, 3));
        assert_ne!(SimRng::stream_seed(1, 2), SimRng::stream_seed(2, 2));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::from_seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_works_via_rng_trait() {
        let mut rng = SimRng::from_seed(4);
        for _ in 0..100 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
        }
    }

    #[test]
    fn gen_index_respects_bounds_and_covers_them() {
        let mut rng = SimRng::from_seed(8);
        let mut seen = [false; 9];
        for _ in 0..1_000 {
            seen[rng.gen_index(9)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_open01_is_positive_and_at_most_one() {
        let mut rng = SimRng::from_seed(12);
        for _ in 0..10_000 {
            let u = rng.f64_open01();
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
        }
    }

    #[test]
    fn bernoulli_skip_rejects_degenerate_probabilities() {
        assert!(BernoulliSkip::new(0.0).is_none());
        assert!(BernoulliSkip::new(-0.1).is_none());
        assert!(BernoulliSkip::new(1.0).is_none());
        assert!(BernoulliSkip::new(1e-300).is_none());
        assert!(BernoulliSkip::new(0.5).is_some());
        assert!(BernoulliSkip::new(f64::NAN).is_none());
    }

    #[test]
    fn ln_unit_matches_libm_to_ten_decimals() {
        let mut rng = SimRng::from_seed(33);
        for _ in 0..100_000 {
            let u = rng.f64_open01();
            let fast = ln_unit(u);
            let exact = u.ln();
            assert!(
                (fast - exact).abs() <= 1e-10 * exact.abs().max(1e-12),
                "u = {u}, fast = {fast}, exact = {exact}"
            );
        }
        assert_eq!(ln_unit(1.0), 0.0);
        // Smallest value f64_open01 can produce.
        let tiny = 1.0 / (1u64 << 53) as f64;
        assert!((ln_unit(tiny) - tiny.ln()).abs() < 1e-9);
    }

    #[test]
    fn for_each_success_positions_are_increasing_and_calibrated() {
        let p = 0.25;
        let skip = BernoulliSkip::new(p).unwrap();
        let mut rng = SimRng::from_seed(55);
        let stream_len = 1_000usize;
        let rounds = 400u32;
        let mut total = 0u64;
        for _ in 0..rounds {
            let mut last: Option<usize> = None;
            skip.for_each_success(&mut rng, stream_len, |pos| {
                assert!(pos < stream_len);
                if let Some(prev) = last {
                    assert!(pos > prev, "positions must strictly increase");
                }
                last = Some(pos);
                total += 1;
            });
        }
        let mean = total as f64 / f64::from(rounds);
        let expected = stream_len as f64 * p;
        let sigma = (stream_len as f64 * p * (1.0 - p) / f64::from(rounds)).sqrt();
        assert!(
            (mean - expected).abs() < 6.0 * sigma,
            "mean flips {mean:.1} vs expected {expected:.1}"
        );
    }

    #[test]
    fn for_each_success_handles_empty_streams() {
        let skip = BernoulliSkip::new(0.5).unwrap();
        let mut rng = SimRng::from_seed(56);
        skip.for_each_success(&mut rng, 0, |_| panic!("no successes in an empty stream"));
    }

    #[test]
    fn bernoulli_skip_mean_gap_matches_geometry() {
        // Mean gap of Geometric(p) is (1 - p) / p.
        let p = 0.3;
        let skip = BernoulliSkip::new(p).unwrap();
        let mut rng = SimRng::from_seed(21);
        let trials = 200_000;
        let total: u64 = (0..trials).map(|_| skip.gap(&mut rng) as u64).sum();
        let mean = total as f64 / f64::from(trials);
        let expected = (1.0 - p) / p;
        assert!((mean - expected).abs() < 0.02, "mean gap = {mean}");
    }
}
