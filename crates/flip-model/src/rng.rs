//! Deterministic random number generation for simulations.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The random number generator threaded through every simulation.
///
/// All randomness in a [`Simulation`](crate::Simulation) — protocol coin
/// flips, gossip recipient choices, collision resolution and channel noise —
/// is derived from a single `SimRng` seeded by the caller, so that every run
/// is exactly reproducible from its seed.
///
/// # Example
///
/// ```
/// use flip_model::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::from_seed(1);
/// let mut b = SimRng::from_seed(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator for a named stream.
    ///
    /// Useful when running many trials in parallel from one master seed: each
    /// trial gets `master.fork(trial_index)` and the streams do not interact.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.inner.next_u64();
        // Mix the stream id with SplitMix64 so that nearby ids diverge.
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::from_seed(z)
    }

    /// Returns `true` with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1]` (delegated to
    /// [`rand::Rng::gen_bool`]).
    #[must_use]
    pub fn chance(&mut self, probability: f64) -> bool {
        use rand::Rng;
        if probability <= 0.0 {
            false
        } else if probability >= 1.0 {
            true
        } else {
            self.inner.gen_bool(probability)
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(99);
        let mut b = SimRng::from_seed(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut master1 = SimRng::from_seed(5);
        let mut master2 = SimRng::from_seed(5);
        let mut c1 = master1.fork(3);
        let mut c2 = master2.fork(3);
        for _ in 0..16 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forked_streams_diverge_by_stream_id() {
        let mut master = SimRng::from_seed(5);
        let mut c1 = master.fork(1);
        let mut master = SimRng::from_seed(5);
        let mut c2 = master.fork(2);
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::from_seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_works_via_rng_trait() {
        let mut rng = SimRng::from_seed(4);
        for _ in 0..100 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
        }
    }
}
