//! Observability primitives for the *Breathe before Speaking* reproduction:
//! hierarchical phase timers, structured event counters and mergeable run
//! profiles.
//!
//! The crate is a dependency-free leaf so every layer of the workspace —
//! the `flip-model` engines, the `sweeps` runner and the experiment
//! binaries — can speak one telemetry vocabulary:
//!
//! * [`Phase`] — the fixed taxonomy of engine round phases (RNG reserve,
//!   scatter, window resolve, sweep emit, noise merge, protocol step,
//!   census apply), timed into a [`PhaseProfile`] of per-phase
//!   count/total/min/max statistics.
//! * [`Event`] — counters for machinery that is otherwise invisible:
//!   radix bucket spills, staging high-water marks, Lemire rejection
//!   redraws, per-message noise fallbacks, fault interceptions and hybrid
//!   tracked-correction draws.
//! * [`TelemetrySink`] — the trait consumers implement; [`NullSink`] is the
//!   zero-cost default and [`Recorder`] the standard accumulating sink.
//! * [`Telemetry`] — the engine-facing handle.  Disabled (the default) it
//!   holds no recorder: [`Telemetry::begin`] returns an empty span without
//!   reading the clock and every other operation is one predictable branch,
//!   so the disabled hot path stays allocation-free and branch-cheap.
//!
//! # Determinism
//!
//! Telemetry observes the engines, it never participates: timers read the
//! monotonic clock (`std::time::Instant`) and counters add integers that
//! the instrumented code already computed.  No telemetry operation draws
//! from — or even holds a reference to — the simulation RNG, so enabling
//! instrumentation cannot perturb a seeded run: deliveries, metrics and
//! golden snapshots are byte-identical with telemetry on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Maximum number of per-round worker lanes a profile tracks; mirrors the
/// round pool's hard width cap in `flip-model`.
pub const MAX_LANES: usize = 64;

/// One phase of an engine round, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Reserving the round's RNG counter block (fixed-size stream advance).
    RngReserve,
    /// Scattering messages to recipients (single-pass slot writes, or the
    /// radix path's staging pass).
    Scatter,
    /// Max-resolving the reservoir window (radix paths; fused into the
    /// scatter on the single-pass path).
    WindowResolve,
    /// Emitting accepted deliveries by sweeping slots in recipient order.
    SweepEmit,
    /// Applying channel noise and delivering accepted messages to agents.
    NoiseMerge,
    /// Running agent protocol hooks (send collection and `end_round`).
    ProtocolStep,
    /// Applying census/count updates (recounts, dense count swaps).
    CensusApply,
}

impl Phase {
    /// Every phase, in execution order.
    pub const ALL: [Phase; 7] = [
        Phase::RngReserve,
        Phase::Scatter,
        Phase::WindowResolve,
        Phase::SweepEmit,
        Phase::NoiseMerge,
        Phase::ProtocolStep,
        Phase::CensusApply,
    ];

    /// Number of phases in the taxonomy.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable machine-readable name (used as JSONL keys).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::RngReserve => "rng_reserve",
            Phase::Scatter => "scatter",
            Phase::WindowResolve => "window_resolve",
            Phase::SweepEmit => "sweep_emit",
            Phase::NoiseMerge => "noise_merge",
            Phase::ProtocolStep => "protocol_step",
            Phase::CensusApply => "census_apply",
        }
    }

    /// Index into [`Phase::ALL`]-shaped arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The phase with the given [`Phase::name`], if any (the inverse used
    /// when reading JSONL telemetry shards back).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured event counter.
///
/// Most events are *sums* ([`TelemetrySink::add_event`]); high-water marks
/// ([`Event::is_high_water`]) are folded with `max`
/// ([`TelemetrySink::observe_max`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Messages that overflowed their radix bucket's fixed-capacity staging
    /// area into the spill list.
    RadixSpills,
    /// High-water mark: the fullest radix staging bucket's occupancy.
    StagingHighWater,
    /// Lemire rejection redraws while drawing recipients (re-mixes of a
    /// message's own block word; they never touch the live stream).
    LemireRedraws,
    /// Accepted messages corrupted through the per-message
    /// `Channel::transmit` fallback instead of fused noise.
    PerMessageFallbacks,
    /// Sends intercepted by the fault plan (Byzantine injections and
    /// crash silencings).
    FaultForcedSends,
    /// Deliveries suppressed because the recipient's fault role was deaf.
    FaultSuppressedDeliveries,
    /// Per-message channel-correction draws spent on the hybrid engine's
    /// tracked agents.
    HybridTrackedCorrections,
}

impl Event {
    /// Every event kind.
    pub const ALL: [Event; 7] = [
        Event::RadixSpills,
        Event::StagingHighWater,
        Event::LemireRedraws,
        Event::PerMessageFallbacks,
        Event::FaultForcedSends,
        Event::FaultSuppressedDeliveries,
        Event::HybridTrackedCorrections,
    ];

    /// Number of event kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable machine-readable name (used as JSONL keys).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Event::RadixSpills => "radix_spills",
            Event::StagingHighWater => "staging_high_water",
            Event::LemireRedraws => "lemire_redraws",
            Event::PerMessageFallbacks => "per_message_fallbacks",
            Event::FaultForcedSends => "fault_forced_sends",
            Event::FaultSuppressedDeliveries => "fault_suppressed_deliveries",
            Event::HybridTrackedCorrections => "hybrid_tracked_corrections",
        }
    }

    /// Index into [`Event::ALL`]-shaped arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether the event is a high-water mark (merged with `max`) rather
    /// than a sum.
    #[must_use]
    pub const fn is_high_water(self) -> bool {
        matches!(self, Event::StagingHighWater)
    }

    /// The event with the given [`Event::name`], if any (the inverse used
    /// when reading JSONL telemetry shards back).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Event> {
        Event::ALL.into_iter().find(|e| e.name() == name)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated timing statistics for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of recorded spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Shortest recorded span, in nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest recorded span, in nanoseconds.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Records one span of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
        self.total_ns += ns;
    }

    /// Folds another statistic into this one.
    pub fn merge(&mut self, other: &PhaseStat) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    /// Mean span length in nanoseconds (`None` when nothing was recorded).
    #[must_use]
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }
}

/// Per-phase timing statistics for a run (or a merged set of runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    stats: [PhaseStat; Phase::COUNT],
}

impl PhaseProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one span for `phase`.
    pub fn record(&mut self, phase: Phase, ns: u64) {
        self.stats[phase.index()].record(ns);
    }

    /// The statistics accumulated for `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> &PhaseStat {
        &self.stats[phase.index()]
    }

    /// Folds another profile into this one.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for phase in Phase::ALL {
            self.stats[phase.index()].merge(other.get(phase));
        }
    }

    /// Folds a pre-accumulated statistic into `phase` (the deserialization
    /// path: shard readers rebuild profiles from stored count/total/min/max
    /// quadruples rather than from individual spans).
    pub fn absorb(&mut self, phase: Phase, stat: &PhaseStat) {
        self.stats[phase.index()].merge(stat);
    }

    /// Whether no span has been recorded for any phase.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.count == 0)
    }
}

/// A consumer of telemetry signals.
///
/// All methods default to no-ops so sinks implement only what they use;
/// [`NullSink`] implements nothing and compiles away entirely.
pub trait TelemetrySink {
    /// Records a completed span of `ns` nanoseconds for `phase`.
    fn record_phase(&mut self, phase: Phase, ns: u64) {
        let _ = (phase, ns);
    }

    /// Adds `count` occurrences of `event`.
    fn add_event(&mut self, event: Event, count: u64) {
        let _ = (event, count);
    }

    /// Observes a high-water `value` for `event` (folded with `max`).
    fn observe_max(&mut self, event: Event, value: u64) {
        let _ = (event, value);
    }

    /// Adds `ns` nanoseconds of busy time for worker `lane`.
    fn record_lane(&mut self, lane: usize, ns: u64) {
        let _ = (lane, ns);
    }
}

/// The do-nothing sink: every method is an empty default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// The standard accumulating sink: a [`PhaseProfile`], the event counters
/// and per-lane busy time, all mergeable across runs and workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recorder {
    phases: PhaseProfile,
    events: [u64; Event::COUNT],
    lanes: [u64; MAX_LANES],
}

impl Default for Recorder {
    fn default() -> Self {
        Self {
            phases: PhaseProfile::default(),
            events: [0; Event::COUNT],
            lanes: [0; MAX_LANES],
        }
    }
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated phase profile.
    #[must_use]
    pub fn phases(&self) -> &PhaseProfile {
        &self.phases
    }

    /// The accumulated count (or high-water mark) of `event`.
    #[must_use]
    pub fn event(&self, event: Event) -> u64 {
        self.events[event.index()]
    }

    /// Busy nanoseconds recorded for each worker lane (index = lane).
    #[must_use]
    pub fn lane_nanos(&self) -> &[u64; MAX_LANES] {
        &self.lanes
    }

    /// Whether nothing at all has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
            && self.events.iter().all(|&c| c == 0)
            && self.lanes.iter().all(|&ns| ns == 0)
    }

    /// Folds a pre-accumulated statistic into `phase` (deserialization).
    pub fn absorb_phase(&mut self, phase: Phase, stat: &PhaseStat) {
        self.phases.absorb(phase, stat);
    }

    /// Folds another recorder into this one (sums, maxes for high-water
    /// events, per-lane sums).
    pub fn merge(&mut self, other: &Recorder) {
        self.phases.merge(&other.phases);
        for event in Event::ALL {
            let i = event.index();
            if event.is_high_water() {
                self.events[i] = self.events[i].max(other.events[i]);
            } else {
                self.events[i] += other.events[i];
            }
        }
        for (mine, theirs) in self.lanes.iter_mut().zip(&other.lanes) {
            *mine += theirs;
        }
    }

    /// Renders the profile as an aligned plain-text table (phases with at
    /// least one span, then non-zero events, then non-idle lanes).
    #[must_use]
    pub fn render(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1.0e6
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
            "phase", "count", "total ms", "min us", "mean us", "max us"
        ));
        for phase in Phase::ALL {
            let stat = self.phases.get(phase);
            if stat.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>10} {:>12.3} {:>10.2} {:>10.2} {:>10.2}\n",
                phase.name(),
                stat.count,
                ms(stat.total_ns),
                stat.min_ns as f64 / 1.0e3,
                stat.mean_ns().unwrap_or(0.0) / 1.0e3,
                stat.max_ns as f64 / 1.0e3,
            ));
        }
        let events: Vec<Event> = Event::ALL
            .into_iter()
            .filter(|&e| self.event(e) > 0)
            .collect();
        if !events.is_empty() {
            out.push_str(&format!("\n{:<28} {:>14}\n", "event", "count"));
            for event in events {
                out.push_str(&format!("{:<28} {:>14}\n", event.name(), self.event(event)));
            }
        }
        let busy_lanes = self.lanes.iter().filter(|&&ns| ns > 0).count();
        if busy_lanes > 0 {
            out.push_str(&format!("\n{:<8} {:>12}\n", "lane", "busy ms"));
            for (lane, &ns) in self.lanes.iter().enumerate() {
                if ns > 0 {
                    out.push_str(&format!("{:<8} {:>12.3}\n", lane, ms(ns)));
                }
            }
        }
        out
    }
}

impl TelemetrySink for Recorder {
    fn record_phase(&mut self, phase: Phase, ns: u64) {
        self.phases.record(phase, ns);
    }

    fn add_event(&mut self, event: Event, count: u64) {
        self.events[event.index()] += count;
    }

    fn observe_max(&mut self, event: Event, value: u64) {
        let slot = &mut self.events[event.index()];
        *slot = (*slot).max(value);
    }

    fn record_lane(&mut self, lane: usize, ns: u64) {
        if lane < MAX_LANES {
            self.lanes[lane] += ns;
        }
    }
}

/// An in-flight phase measurement; see [`Telemetry::begin`].
///
/// Holds the start instant only when the owning handle was enabled, so a
/// disabled handle never reads the clock.
#[derive(Debug)]
#[must_use = "a span measures nothing unless finished with Telemetry::end"]
pub struct PhaseSpan {
    start: Option<Instant>,
}

impl PhaseSpan {
    /// A span that will record nothing.
    pub const fn empty() -> Self {
        Self { start: None }
    }
}

/// The engine-facing telemetry handle: either *off* (the default — no
/// recorder, no clock reads, one predictable branch per call site) or *on*
/// (accumulating into a boxed [`Recorder`]).
///
/// The handle is deliberately concrete rather than generic over
/// [`TelemetrySink`]: engines hold it as a plain field, so enabling
/// telemetry is a runtime decision that does not monomorphize — or change
/// the type of — any engine.
#[derive(Debug, Default)]
pub struct Telemetry {
    recorder: Option<Box<Recorder>>,
}

impl Telemetry {
    /// A disabled handle (records nothing, never reads the clock).
    #[must_use]
    pub const fn off() -> Self {
        Self { recorder: None }
    }

    /// An enabled handle accumulating into a fresh [`Recorder`].
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            recorder: Some(Box::default()),
        }
    }

    /// Whether the handle is recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Starts a phase span: reads the clock only when enabled.
    #[inline]
    pub fn begin(&self) -> PhaseSpan {
        PhaseSpan {
            start: self.recorder.is_some().then(Instant::now),
        }
    }

    /// Finishes `span`, attributing its elapsed time to `phase`.
    #[inline]
    pub fn end(&mut self, phase: Phase, span: PhaseSpan) {
        if let (Some(recorder), Some(start)) = (self.recorder.as_deref_mut(), span.start) {
            recorder.record_phase(phase, saturating_ns(start));
        }
    }

    /// Adds `count` occurrences of `event` (no-op when disabled or zero).
    #[inline]
    pub fn add(&mut self, event: Event, count: u64) {
        if count > 0 {
            if let Some(recorder) = self.recorder.as_deref_mut() {
                recorder.add_event(event, count);
            }
        }
    }

    /// Observes a high-water `value` for `event` (no-op when disabled).
    #[inline]
    pub fn observe_max(&mut self, event: Event, value: u64) {
        if let Some(recorder) = self.recorder.as_deref_mut() {
            recorder.observe_max(event, value);
        }
    }

    /// Adds `ns` nanoseconds of busy time for worker `lane`.
    #[inline]
    pub fn record_lane(&mut self, lane: usize, ns: u64) {
        if let Some(recorder) = self.recorder.as_deref_mut() {
            recorder.record_lane(lane, ns);
        }
    }

    /// The recorder accumulated so far, when enabled.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// Takes the recorder out, disabling the handle.
    pub fn take(&mut self) -> Option<Recorder> {
        self.recorder.take().map(|boxed| *boxed)
    }
}

fn saturating_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_match_all_order() {
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        for (i, event) in Event::ALL.into_iter().enumerate() {
            assert_eq!(event.index(), i);
        }
    }

    #[test]
    fn phase_stat_tracks_count_total_min_max() {
        let mut stat = PhaseStat::default();
        assert_eq!(stat.mean_ns(), None);
        stat.record(10);
        stat.record(30);
        stat.record(20);
        assert_eq!(stat.count, 3);
        assert_eq!(stat.total_ns, 60);
        assert_eq!(stat.min_ns, 10);
        assert_eq!(stat.max_ns, 30);
        assert_eq!(stat.mean_ns(), Some(20.0));
    }

    #[test]
    fn phase_stat_merge_is_commutative_with_zero_identity() {
        let mut a = PhaseStat::default();
        a.record(5);
        a.record(15);
        let mut b = PhaseStat::default();
        b.record(1);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 3);
        assert_eq!(ab.min_ns, 1);
        assert_eq!(ab.max_ns, 15);

        let mut with_empty = a;
        with_empty.merge(&PhaseStat::default());
        assert_eq!(with_empty, a);
        let mut from_empty = PhaseStat::default();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }

    #[test]
    fn recorder_accumulates_and_merges() {
        let mut a = Recorder::new();
        a.record_phase(Phase::Scatter, 100);
        a.add_event(Event::RadixSpills, 3);
        a.observe_max(Event::StagingHighWater, 40);
        a.record_lane(0, 70);

        let mut b = Recorder::new();
        b.record_phase(Phase::Scatter, 200);
        b.add_event(Event::RadixSpills, 2);
        b.observe_max(Event::StagingHighWater, 25);
        b.record_lane(1, 30);

        a.merge(&b);
        assert_eq!(a.phases().get(Phase::Scatter).count, 2);
        assert_eq!(a.phases().get(Phase::Scatter).total_ns, 300);
        assert_eq!(a.event(Event::RadixSpills), 5);
        // High-water marks merge with max, not addition.
        assert_eq!(a.event(Event::StagingHighWater), 40);
        assert_eq!(a.lane_nanos()[0], 70);
        assert_eq!(a.lane_nanos()[1], 30);
        assert!(!a.is_empty());
    }

    #[test]
    fn disabled_handle_records_nothing_and_never_reads_the_clock() {
        let mut tel = Telemetry::off();
        assert!(!tel.is_enabled());
        let span = tel.begin();
        // The span is empty: no Instant was taken.
        assert!(span.start.is_none());
        tel.end(Phase::Scatter, span);
        tel.add(Event::LemireRedraws, 7);
        tel.observe_max(Event::StagingHighWater, 9);
        tel.record_lane(0, 1);
        assert!(tel.recorder().is_none());
        assert!(tel.take().is_none());
    }

    #[test]
    fn enabled_handle_accumulates_and_takes() {
        let mut tel = Telemetry::enabled();
        assert!(tel.is_enabled());
        let span = tel.begin();
        tel.end(Phase::ProtocolStep, span);
        tel.add(Event::FaultForcedSends, 2);
        tel.add(Event::FaultForcedSends, 0); // zero adds are dropped early
        let recorder = tel.take().expect("recorder present");
        assert!(!tel.is_enabled());
        assert_eq!(recorder.phases().get(Phase::ProtocolStep).count, 1);
        assert_eq!(recorder.event(Event::FaultForcedSends), 2);
    }

    #[test]
    fn render_lists_recorded_phases_and_events() {
        let mut recorder = Recorder::new();
        recorder.record_phase(Phase::NoiseMerge, 1_500);
        recorder.add_event(Event::PerMessageFallbacks, 12);
        let table = recorder.render();
        assert!(table.contains("noise_merge"), "{table}");
        assert!(table.contains("per_message_fallbacks"), "{table}");
        assert!(!table.contains("rng_reserve"), "{table}");
    }

    #[test]
    fn null_sink_compiles_and_ignores_everything() {
        let mut sink = NullSink;
        sink.record_phase(Phase::Scatter, 1);
        sink.add_event(Event::RadixSpills, 1);
        sink.observe_max(Event::StagingHighWater, 1);
        sink.record_lane(0, 1);
    }
}
