//! Shared helpers for the Criterion benchmarks that regenerate the paper's
//! evaluation (experiments E1–E12 of `DESIGN.md`).
//!
//! Each benchmark measures the wall-clock cost of one experiment's inner
//! simulation at a reduced scale, and — more importantly for the reproduction
//! — prints the corresponding result table once per run so that
//! `cargo bench` regenerates the same rows as the `e01`…`e12` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use experiments::ExperimentConfig;

/// The benchmark-sized experiment configuration: tiny trial counts so the
/// measured simulations stay in the milliseconds-to-seconds range.
#[must_use]
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        trials: 2,
        base_seed: 0xBE9C,
        ..ExperimentConfig::quick()
    }
}

/// Prints a table header so benchmark logs clearly attribute regenerated rows.
pub fn announce(table_markdown: &str) {
    println!("\n--- regenerated table ---\n{table_markdown}");
}

pub mod gate;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        assert!(bench_config().trials <= 4);
        assert!(bench_config().quick);
    }
}
