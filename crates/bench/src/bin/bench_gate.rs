//! The CI perf-regression gate.
//!
//! Usage:
//!
//! ```sh
//! # Compare a fresh run against the checked-in baseline (threshold in %),
//! # normalising both sides by a calibration bench so host speed cancels:
//! cargo run -p bench --bin bench_gate -- check BENCH_RESULTS.json bench/baseline.json 25 \
//!     --calibrate substrate/calibration_spin \
//!     --require-prefix substrate/ --require-prefix dense_engine/
//!
//! # Regenerate the baseline from a fresh run:
//! cargo run -p bench --bin bench_gate -- write-baseline BENCH_RESULTS.json bench/baseline.json
//! ```
//!
//! `BENCH_RESULTS.json` is produced by running the benches with
//! `BENCH_RESULTS_JSON=$PWD/BENCH_RESULTS.json cargo bench` (the vendored
//! criterion harness appends one JSON line per benchmark).  Only benchmarks
//! listed in the baseline are gated; `check` exits non-zero when any of them
//! regresses past the threshold or disappears from the run.  Without
//! `--calibrate` (or when the calibration bench is missing from either side)
//! the comparison falls back to raw milliseconds, which is only meaningful
//! when baseline and run come from the same machine.

use std::process::ExitCode;

use bench::gate::{
    compare, format_baseline, normalize, parse_results, unbaselined, CALIBRATED_FLOOR,
    CALIBRATION_GUARD_RATIO, RAW_FLOOR_MS,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate check <results> <baseline> [threshold_pct] [--calibrate <bench-id>]\n\
         \x20                  [--require-prefix <group/> ...]\n\
         \x20      bench_gate write-baseline <results> <baseline>\n\
         --require-prefix declares a gated group: a bench in the results whose id\n\
         starts with the prefix but which has no baseline entry fails the gate\n\
         (add it with `bench_gate write-baseline` and commit the new entry)."
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let calibrate = match args.iter().position(|a| a == "--calibrate") {
        Some(pos) => {
            if pos + 1 >= args.len() {
                return usage();
            }
            let id = args.remove(pos + 1);
            args.remove(pos);
            Some(id)
        }
        None => None,
    };
    let mut require_prefixes = Vec::new();
    while let Some(pos) = args.iter().position(|a| a == "--require-prefix") {
        if pos + 1 >= args.len() {
            return usage();
        }
        require_prefixes.push(args.remove(pos + 1));
        args.remove(pos);
    }
    match args.first().map(String::as_str) {
        Some("check") if (3..=4).contains(&args.len()) => {
            let results_text = match read(&args[1]) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let baseline_text = match read(&args[2]) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let threshold: f64 = match args.get(3).map_or(Ok(25.0), |s| s.parse()) {
                Ok(t) if t >= 0.0 => t,
                _ => {
                    eprintln!("bench_gate: threshold must be a non-negative percentage");
                    return ExitCode::from(2);
                }
            };
            let mut current = parse_results(&results_text);
            let mut baseline = parse_results(&baseline_text);
            // Gated-group enforcement works on the raw sets: normalization
            // drops the calibration bench and must not hide anything.
            let unbaselined_ids = unbaselined(&baseline, &current, &require_prefixes);
            if current.is_empty() {
                eprintln!(
                    "bench_gate: no benchmark records in {} — was BENCH_RESULTS_JSON set?",
                    args[1]
                );
                return ExitCode::from(2);
            }
            if baseline.is_empty() {
                // An unparseable baseline (e.g. reformatted by a JSON
                // pretty-printer — the file is line-JSON with exact
                // `"bench":"` needles) must not silently disable the gate.
                eprintln!(
                    "bench_gate: no benchmark records in baseline {} — regenerate it with \
                     `bench_gate write-baseline`",
                    args[2]
                );
                return ExitCode::from(2);
            }
            let mut floor = RAW_FLOOR_MS;
            let mut unit = "ms";
            let mut calibration_regressed = false;
            if let Some(cal) = &calibrate {
                match (normalize(&baseline, cal), normalize(&current, cal)) {
                    (Some(b), Some(c)) => {
                        // The calibration bench is the unit, so it leaves the
                        // gated set; guard it separately against catastrophic
                        // raw regression, which would deflate every other
                        // normalized timing.
                        let base_unit = baseline[cal.as_str()];
                        let cur_unit = current[cal.as_str()];
                        if cur_unit > base_unit * CALIBRATION_GUARD_RATIO {
                            println!(
                                "REGRESSED {cal}: calibration bench {base_unit:.3} ms -> \
                                 {cur_unit:.3} ms exceeds the {CALIBRATION_GUARD_RATIO}x guard"
                            );
                            calibration_regressed = true;
                        }
                        println!("calibrated: values are multiples of `{cal}`");
                        baseline = b;
                        current = c;
                        floor = CALIBRATED_FLOOR;
                        unit = "x";
                    }
                    _ => {
                        eprintln!(
                            "bench_gate: calibration bench `{cal}` missing from results or \
                             baseline; falling back to raw milliseconds"
                        );
                    }
                }
            }
            let mut report = compare(&baseline, &current, threshold, floor);
            report.unbaselined = unbaselined_ids;
            for (id, base, now) in &report.passed {
                println!("ok       {id}: {base:.3} {unit} -> {now:.3} {unit}");
            }
            for id in &report.ungated {
                println!("ungated  {id} (no baseline entry)");
            }
            for id in &report.missing {
                println!("MISSING  {id}: in baseline but not in this run");
            }
            for id in &report.unbaselined {
                println!(
                    "UNBASELINED {id}: in a gated group but missing from the baseline — \
                     regressions of this bench are invisible until it is added; run\n\
                     \x20   cargo run -p bench --bin bench_gate -- write-baseline \
                     BENCH_RESULTS.json {}\n\
                     \x20   (then trim to the hot-path entries and commit)",
                    args[2]
                );
            }
            for (id, base, now) in &report.regressions {
                println!(
                    "REGRESSED {id}: {base:.3} {unit} -> {now:.3} {unit} (+{:.1}% > {threshold}%)",
                    (now / base - 1.0) * 100.0
                );
            }
            if report.is_ok() && !calibration_regressed {
                println!(
                    "bench gate passed: {} gated, {} ungated",
                    report.passed.len(),
                    report.ungated.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "bench gate FAILED: {} regression(s), {} missing, {} unbaselined{}",
                    report.regressions.len(),
                    report.missing.len(),
                    report.unbaselined.len(),
                    if calibration_regressed {
                        ", calibration bench regressed"
                    } else {
                        ""
                    }
                );
                ExitCode::FAILURE
            }
        }
        Some("write-baseline") if args.len() == 3 => {
            let results_text = match read(&args[1]) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let results = parse_results(&results_text);
            if results.is_empty() {
                eprintln!("bench_gate: no benchmark records in {}", args[1]);
                return ExitCode::from(2);
            }
            if let Err(e) = std::fs::write(&args[2], format_baseline(&results)) {
                eprintln!("bench_gate: cannot write {}: {e}", args[2]);
                return ExitCode::from(2);
            }
            println!("wrote {} baseline entries to {}", results.len(), args[2]);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
