//! The CI perf-regression gate: parsing and comparing benchmark summaries.
//!
//! The vendored criterion harness appends one JSON line per finished
//! benchmark to `$BENCH_RESULTS_JSON`
//! (`{"bench":"group/id","ms_per_iter":…,"iters":…}`).  This module parses
//! those line files and compares a fresh run against the checked-in baseline
//! `bench/baseline.json`; the `bench_gate` binary wraps it for CI.
//!
//! Only benchmarks listed in the baseline are gated — the baseline *is* the
//! declaration of which benches are hot paths.  Results without a baseline
//! entry are informational, and a baseline entry whose benchmark vanished
//! fails the gate (a silently deleted hot-path bench would otherwise make
//! regressions invisible).
//!
//! Raw wall-clock comparisons across machines are meaningless — a CI runner
//! may simply be 1.5× slower than the machine that recorded the baseline —
//! so the gate supports *calibrated* mode: both sides are divided by the
//! timing of a designated calibration benchmark measured in the same run
//! ([`normalize`]), cancelling overall host speed and leaving only relative
//! regressions of each bench against the calibration workload.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One benchmark's wall-clock summary: mean milliseconds per iteration.
pub type BenchResults = BTreeMap<String, f64>;

/// Parses a results/baseline file: one JSON object per line with `"bench"`
/// and `"ms_per_iter"` fields.  Unparseable lines and non-positive timings
/// (a `{:.6}`-rounded zero carries no gating signal and would print
/// `inf%` regressions) are skipped.  Later lines win on duplicate ids.
#[must_use]
pub fn parse_results(text: &str) -> BenchResults {
    let mut results = BenchResults::new();
    for line in text.lines() {
        let Some(id) = extract_string_field(line, "bench") else {
            continue;
        };
        let Some(ms) = extract_number_field(line, "ms_per_iter") else {
            continue;
        };
        if ms.is_finite() && ms > 0.0 {
            results.insert(id, ms);
        }
    }
    results
}

fn extract_string_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_number_field(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders results in the line-JSON format [`parse_results`] reads, for
/// regenerating the checked-in baseline.
#[must_use]
pub fn format_baseline(results: &BenchResults) -> String {
    let mut out = String::new();
    for (id, ms) in results {
        let _ = writeln!(out, "{{\"bench\":\"{id}\",\"ms_per_iter\":{ms:.6}}}");
    }
    out
}

/// The verdict of comparing a run against the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Benchmarks slower than baseline by more than the threshold:
    /// `(id, baseline_ms, current_ms)`.
    pub regressions: Vec<(String, f64, f64)>,
    /// Baseline benchmarks absent from the current run.
    pub missing: Vec<String>,
    /// Gated benchmarks within the threshold: `(id, baseline_ms, current_ms)`.
    pub passed: Vec<(String, f64, f64)>,
    /// Benchmarks in the current run with no baseline entry (not gated).
    pub ungated: Vec<String>,
    /// Ungated benchmarks that belong to a *gated group* (their id matches
    /// one of the `--require-prefix` prefixes): present in the run, missing
    /// from the baseline.  Failing, because a hot-path bench that never
    /// enters the baseline is silently exempt from regression gating.
    pub unbaselined: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no regressions, nothing missing from the
    /// run, no gated-group bench missing from the baseline).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty() && self.unbaselined.is_empty()
    }
}

/// Benchmarks in `current` whose id starts with one of the gated-group
/// `prefixes` but which have no `baseline` entry.
///
/// The baseline is the declaration of which benches are gated, which makes
/// a *new* hot-path bench invisible to the gate by default: it shows up as
/// "ungated", the gate passes, and a later regression of that bench passes
/// too.  Declaring the hot-path groups by prefix turns that silence into a
/// failure with a fix attached (run `bench_gate write-baseline` and commit
/// the new entry).  Compute this on the **raw** result sets — calibration
/// normalization drops the calibration bench and must not mask anything.
#[must_use]
pub fn unbaselined(
    baseline: &BenchResults,
    current: &BenchResults,
    prefixes: &[String],
) -> Vec<String> {
    current
        .keys()
        .filter(|id| prefixes.iter().any(|p| id.starts_with(p.as_str())))
        .filter(|id| !baseline.contains_key(id.as_str()))
        .cloned()
        .collect()
}

/// Divides every entry by the `calibration` entry's value and drops the
/// calibration bench itself (its normalized value is identically 1).
///
/// Returns `None` when the calibration bench is absent or its timing is not
/// a positive number, in which case callers should fall back to raw
/// comparison.
#[must_use]
pub fn normalize(results: &BenchResults, calibration: &str) -> Option<BenchResults> {
    let unit = *results.get(calibration)?;
    if unit <= 0.0 || unit.is_nan() {
        return None;
    }
    Some(
        results
            .iter()
            .filter(|(id, _)| id.as_str() != calibration)
            .map(|(id, &ms)| (id.clone(), ms / unit))
            .collect(),
    )
}

/// The absolute allowance floor for raw (milliseconds) comparisons:
/// scheduler jitter on micro-benchmarks must not produce false alarms.
pub const RAW_FLOOR_MS: f64 = 0.05;

/// The absolute allowance floor for calibrated comparisons, in units of the
/// calibration bench's cost (~100 µs against the ~5 ms `calibration_spin`
/// unit).  Low-sample timing of the microsecond-scale benches jitters by
/// tens of µs on a shared runner, so benches whose baseline sits below this
/// resolution are in effect gated only against multi-x regressions — 25% of
/// a few microseconds is not measurable there — which is the intended
/// trade-off; benches at or above a millisecond are governed by the
/// percentage threshold alone.
pub const CALIBRATED_FLOOR: f64 = 0.02;

/// Maximum tolerated raw slowdown of the calibration bench itself between
/// baseline and current run.  The calibration bench is the normalisation
/// unit, so [`normalize`] removes it from the gated set; this guard is the
/// backstop that keeps a catastrophic regression *of the calibration path*
/// (which would silently deflate every other normalized timing) from
/// passing.  It must stay loose enough to absorb genuine machine-speed
/// differences between the baseline recorder and CI runners.
pub const CALIBRATION_GUARD_RATIO: f64 = 4.0;

/// Compares `current` against `baseline`, flagging every gated benchmark
/// whose value exceeds the baseline by more than `threshold_pct` percent
/// (with an `abs_floor` absolute allowance on top, in whatever unit the two
/// result sets are expressed in — see [`RAW_FLOOR_MS`] / [`CALIBRATED_FLOOR`]).
#[must_use]
pub fn compare(
    baseline: &BenchResults,
    current: &BenchResults,
    threshold_pct: f64,
    abs_floor: f64,
) -> GateReport {
    let mut report = GateReport::default();
    for (id, &base_ms) in baseline {
        match current.get(id) {
            None => report.missing.push(id.clone()),
            Some(&now_ms) => {
                let allowed = (base_ms * (1.0 + threshold_pct / 100.0)).max(base_ms + abs_floor);
                if now_ms > allowed {
                    report.regressions.push((id.clone(), base_ms, now_ms));
                } else {
                    report.passed.push((id.clone(), base_ms, now_ms));
                }
            }
        }
    }
    for id in current.keys() {
        if !baseline.contains_key(id) {
            report.ungated.push(id.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results(pairs: &[(&str, f64)]) -> BenchResults {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_harness_output_lines() {
        let text = "\
{\"bench\":\"substrate/route_all_send/1000\",\"ms_per_iter\":0.123456,\"iters\":20}\n\
not json at all\n\
{\"bench\":\"dense_engine/run500_n1e6\",\"ms_per_iter\":42.5,\"iters\":3}\n";
        let parsed = parse_results(text);
        assert_eq!(parsed.len(), 2);
        assert!((parsed["substrate/route_all_send/1000"] - 0.123456).abs() < 1e-9);
        assert!((parsed["dense_engine/run500_n1e6"] - 42.5).abs() < 1e-9);
    }

    #[test]
    fn later_duplicates_win_and_garbage_is_skipped() {
        let text = "\
{\"bench\":\"a/b\",\"ms_per_iter\":1.0,\"iters\":2}\n\
{\"bench\":\"a/b\",\"ms_per_iter\":2.0,\"iters\":2}\n\
{\"bench\":\"bad\",\"ms_per_iter\":NaN}\n\
{\"bench\":\"worse\",\"ms_per_iter\":-1.0}\n\
{\"bench\":\"zero\",\"ms_per_iter\":0.000000}\n";
        let parsed = parse_results(text);
        assert_eq!(parsed.len(), 1);
        assert!((parsed["a/b"] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_format_round_trips() {
        let original = results(&[("g/one", 1.25), ("g/two", 0.003)]);
        let parsed = parse_results(&format_baseline(&original));
        assert_eq!(parsed.len(), 2);
        for (id, ms) in &original {
            assert!((parsed[id] - ms).abs() < 1e-6);
        }
    }

    #[test]
    fn regressions_beyond_threshold_fail() {
        let baseline = results(&[("g/hot", 10.0)]);
        let ok = compare(&baseline, &results(&[("g/hot", 12.0)]), 25.0, RAW_FLOOR_MS);
        assert!(ok.is_ok());
        assert_eq!(ok.passed.len(), 1);
        let bad = compare(&baseline, &results(&[("g/hot", 12.6)]), 25.0, RAW_FLOOR_MS);
        assert!(!bad.is_ok());
        assert_eq!(bad.regressions.len(), 1);
        assert_eq!(bad.regressions[0].0, "g/hot");
    }

    #[test]
    fn tiny_baselines_get_an_absolute_jitter_floor() {
        // 25% of 0.01 ms is 2.5 µs — far below scheduler noise.  The 0.05 ms
        // floor keeps micro-benchmarks from flapping.
        let baseline = results(&[("g/micro", 0.01)]);
        let report = compare(
            &baseline,
            &results(&[("g/micro", 0.05)]),
            25.0,
            RAW_FLOOR_MS,
        );
        assert!(report.is_ok(), "{report:?}");
        let report = compare(
            &baseline,
            &results(&[("g/micro", 0.12)]),
            25.0,
            RAW_FLOOR_MS,
        );
        assert!(!report.is_ok());
    }

    #[test]
    fn vanished_benchmarks_fail_and_new_ones_are_ungated() {
        let baseline = results(&[("g/gone", 1.0)]);
        let current = results(&[("g/new", 1.0)]);
        let report = compare(&baseline, &current, 25.0, RAW_FLOOR_MS);
        assert!(!report.is_ok());
        assert_eq!(report.missing, vec!["g/gone".to_string()]);
        assert_eq!(report.ungated, vec!["g/new".to_string()]);
    }

    #[test]
    fn gated_group_benches_missing_from_the_baseline_fail_the_gate() {
        let baseline = results(&[("substrate/old", 1.0)]);
        let current = results(&[
            ("substrate/old", 1.0),
            ("substrate/route_radix/100000", 0.5),
            ("stage1_bias/side_experiment", 2.0),
        ]);
        // Without declared prefixes nothing changes: new benches are merely
        // informational.
        let mut report = compare(&baseline, &current, 25.0, RAW_FLOOR_MS);
        assert!(report.is_ok(), "{report:?}");

        // Declaring `substrate/` a gated group turns the silent omission
        // into a failure naming exactly the new hot-path bench — and not
        // the unrelated experiment bench.
        report.unbaselined = unbaselined(
            &baseline,
            &current,
            &["substrate/".to_string(), "dense_engine/".to_string()],
        );
        assert!(!report.is_ok());
        assert_eq!(
            report.unbaselined,
            vec!["substrate/route_radix/100000".to_string()]
        );
    }

    #[test]
    fn normalization_divides_by_the_calibration_bench() {
        let raw = results(&[("cal/unit", 0.5), ("g/hot", 10.0), ("g/cold", 0.25)]);
        let normalized = normalize(&raw, "cal/unit").unwrap();
        assert_eq!(normalized.len(), 2, "calibration bench itself is dropped");
        assert!((normalized["g/hot"] - 20.0).abs() < 1e-12);
        assert!((normalized["g/cold"] - 0.5).abs() < 1e-12);
        assert!(normalize(&raw, "missing/bench").is_none());
        assert!(normalize(&results(&[("cal/unit", 0.0)]), "cal/unit").is_none());
    }

    #[test]
    fn cheap_benches_are_still_gated_against_multi_x_regressions() {
        // A bench far below the calibration unit: 25% is unmeasurable, but a
        // regression past the jitter floor must still trip the gate.
        let baseline = results(&[("g/micro", 0.02)]);
        let ok = compare(
            &baseline,
            &results(&[("g/micro", 0.02 + CALIBRATED_FLOOR * 0.9)]),
            25.0,
            CALIBRATED_FLOOR,
        );
        assert!(ok.is_ok(), "{ok:?}");
        let bad = compare(
            &baseline,
            &results(&[("g/micro", 0.02 + CALIBRATED_FLOOR * 1.5)]),
            25.0,
            CALIBRATED_FLOOR,
        );
        assert!(
            !bad.is_ok(),
            "a regression past the floor must fail: {bad:?}"
        );
    }

    #[test]
    fn calibration_cancels_uniform_host_slowdown() {
        // The same workload on a machine 1.6x slower: every raw timing grows
        // 60%, which a raw 25% gate would flag; the calibrated gate does not.
        let baseline = results(&[("cal/unit", 0.5), ("g/hot", 10.0)]);
        let slower = results(&[("cal/unit", 0.8), ("g/hot", 16.0)]);
        let raw = compare(&baseline, &slower, 25.0, RAW_FLOOR_MS);
        assert!(!raw.is_ok(), "raw comparison is fooled by host speed");
        let report = compare(
            &normalize(&baseline, "cal/unit").unwrap(),
            &normalize(&slower, "cal/unit").unwrap(),
            25.0,
            CALIBRATED_FLOOR,
        );
        assert!(report.is_ok(), "calibrated comparison is not: {report:?}");
        // A genuine 2x regression of g/hot still fails after calibration.
        let regressed = results(&[("cal/unit", 0.8), ("g/hot", 32.0)]);
        let report = compare(
            &normalize(&baseline, "cal/unit").unwrap(),
            &normalize(&regressed, "cal/unit").unwrap(),
            25.0,
            CALIBRATED_FLOOR,
        );
        assert!(!report.is_ok());
    }
}
