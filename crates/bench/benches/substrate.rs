//! Microbenchmarks of the Flip-model substrate itself (engine, scheduler,
//! channel), used as an ablation reference point: how much of the protocol's
//! wall-clock cost is the communication substrate versus protocol logic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flip_model::{
    Agent, BernoulliSkip, BinarySymmetricChannel, Channel, GossipScheduler, Opinion, OpinionDelta,
    Round, RoundPool, RoundRouting, SimRng, Simulation, SimulationConfig,
};

struct Beacon(Opinion);

impl Agent for Beacon {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        Some(self.0)
    }
    fn deliver(&mut self, _round: Round, _message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        OpinionDelta::NONE
    }
    fn opinion(&self) -> Option<Opinion> {
        Some(self.0)
    }
}

fn substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // A fixed pure-CPU workload (~3 ms/iter) used as the machine-speed
    // calibration unit by the bench gate: long enough that low-sample
    // timings are stable to a few percent, unlike the microsecond benches
    // whose single-run jitter would otherwise multiply into every
    // normalized ratio.  Deliberately self-contained arithmetic (an inline
    // LCG, no workspace code): if it shared a hot function with the gated
    // benches, a regression there would cancel out of the normalized ratios
    // instead of tripping the gate.
    group.bench_function("calibration_spin", |b| {
        b.iter(|| {
            let mut state = 0xCA11_B8A7Eu64;
            let mut acc = 0u64;
            for _ in 0..4_000_000 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                acc = acc.wrapping_add(state >> 33);
            }
            acc
        });
    });

    // Raw generator throughput: batched counter-mixed refill of a 4k-word
    // buffer (the core primitive behind every other number here).
    group.bench_function("rng_fill", |b| {
        let mut rng = SimRng::from_seed(7);
        let mut buf = vec![0u64; 4096];
        b.iter(|| {
            rng.fill_u64(&mut buf);
            buf[4095]
        });
    });

    // Raw channel throughput.
    let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid");
    group.bench_function("channel_transmit_10k", |b| {
        let mut rng = SimRng::from_seed(1);
        b.iter(|| {
            let mut flips = 0u32;
            for _ in 0..10_000 {
                if channel.transmit(Opinion::One, &mut rng) == Opinion::Zero {
                    flips += 1;
                }
            }
            flips
        });
    });

    // Scheduler routing with everyone sending.
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("route_all_send", n), &n, |b, &n| {
            let mut scheduler = GossipScheduler::new(n).expect("valid population");
            let mut rng = SimRng::from_seed(2);
            let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
            let mut routing = RoundRouting::with_capacity(n);
            b.iter(|| {
                scheduler.route_into(&sends, &mut rng, &mut routing);
                routing.sent
            });
        });
    }

    // The two routing paths head to head at and above the radix crossover:
    // `route_single_pass` scatters straight into the population-wide
    // reservoir slots, `route_radix` buckets recipients into cache-resident
    // windows first.  The gap between the pairs is the cache-miss cost the
    // radix scheme removes (and the data behind the `RADIX_MIN_N` choice).
    for &n in &[100_000usize, 1_000_000] {
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
        group.bench_with_input(BenchmarkId::new("route_radix", n), &n, |b, &n| {
            let mut scheduler = GossipScheduler::new(n).expect("valid population");
            let mut rng = SimRng::from_seed(6);
            let mut routing = RoundRouting::with_capacity(n);
            b.iter(|| {
                scheduler.route_into_radix(&sends, &mut rng, &mut routing);
                routing.sent
            });
        });
        group.bench_with_input(BenchmarkId::new("route_single_pass", n), &n, |b, &n| {
            let mut scheduler = GossipScheduler::new(n).expect("valid population");
            let mut rng = SimRng::from_seed(6);
            let mut routing = RoundRouting::with_capacity(n);
            b.iter(|| {
                scheduler.route_into_single_pass(&sends, &mut rng, &mut routing);
                routing.sent
            });
        });
    }

    // The parallel router over a persistent four-lane `RoundPool` at radix
    // scale, against the sequential radix reference at the same tiers.  The
    // lane width is fixed (not machine-derived) so the workload — and the
    // baseline entry gating it — is identical on every host; on a single
    // hardware thread the four lanes time-slice one core, so the bench then
    // measures pure orchestration overhead (staging regions, prefix sums,
    // pool rendezvous) rather than speedup.  n = 10⁷ is the new large-n
    // tier: one decade past the engine's previous headline scale.
    for &n in &[1_000_000usize, 10_000_000] {
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
        group.bench_with_input(BenchmarkId::new("route_parallel", n), &n, |b, &n| {
            let pool = RoundPool::new(4);
            let mut scheduler = GossipScheduler::new(n).expect("valid population");
            let mut rng = SimRng::from_seed(6);
            let mut routing = RoundRouting::with_capacity(n);
            b.iter(|| {
                scheduler.route_into_parallel(&sends, &mut rng, &mut routing, &pool);
                routing.sent
            });
        });
    }
    group.bench_with_input(
        BenchmarkId::new("route_radix", 10_000_000),
        &10_000_000usize,
        |b, &n| {
            let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
            let mut scheduler = GossipScheduler::new(n).expect("valid population");
            let mut rng = SimRng::from_seed(6);
            let mut routing = RoundRouting::with_capacity(n);
            b.iter(|| {
                scheduler.route_into_radix(&sends, &mut rng, &mut routing);
                routing.sent
            });
        },
    );

    // Routing plus fused channel noise (geometric skip-sampling over the
    // accepted stream) without any agent logic: the substrate cost of one
    // noisy all-send round at the worst-case crossover of ε = 0.2.
    group.bench_function("route_fused_noise_10k", |b| {
        let n = 10_000;
        let mut scheduler = GossipScheduler::new(n).expect("valid population");
        let mut rng = SimRng::from_seed(4);
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
        let mut routing = RoundRouting::with_capacity(n);
        let skip = BernoulliSkip::new(channel.crossover()).expect("noisy channel");
        b.iter(|| {
            scheduler.route_into(&sends, &mut rng, &mut routing);
            let mut flips = 0u64;
            skip.for_each_success(&mut rng, routing.accepted().len(), |_| flips += 1);
            flips
        });
    });

    // One full engine round with everyone sending (the headline per-agent
    // hot-path number; 100k is the scenario-diversity scale of the ROADMAP,
    // 1e6 the million-agent scale the radix path unlocked, and 1e7 the tier
    // the parallel round opens up).
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000, 10_000_000] {
        group.bench_with_input(BenchmarkId::new("engine_round_all_send", n), &n, |b, &n| {
            let agents: Vec<Beacon> = (0..n).map(|_| Beacon(Opinion::One)).collect();
            let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid");
            let config = SimulationConfig::new(n).with_seed(3);
            let mut sim = Simulation::new(agents, channel, config).expect("valid simulation");
            b.iter(|| sim.step().metrics.messages_sent);
        });
    }

    // The headline round with telemetry recording on: phase timers around
    // every round phase plus event counters.  The gap to
    // `engine_round_all_send/100000` is the whole observability overhead —
    // gated in the baseline so instrumentation creep shows up as a perf
    // regression, not as a slow mystery.  (Telemetry *off* is the zero-cost
    // path: `engine_round_all_send` itself runs with the `NullSink`-style
    // disabled state and is gated separately.)
    group.bench_function("engine_round_telemetry_overhead", |b| {
        let n = 100_000;
        let agents: Vec<Beacon> = (0..n).map(|_| Beacon(Opinion::One)).collect();
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid");
        let config = SimulationConfig::new(n).with_seed(3);
        let mut sim = Simulation::new(agents, channel, config).expect("valid simulation");
        sim.enable_telemetry();
        b.iter(|| sim.step().metrics.messages_sent);
    });

    // The same engine round with four worker lanes — bit-identical results,
    // so the gap to `engine_round_all_send` at the same n is exactly the
    // round's parallel efficiency on the host (≈ overhead-only on a
    // single-core runner, see `route_parallel`).
    for &n in &[1_000_000usize, 10_000_000] {
        group.bench_with_input(BenchmarkId::new("engine_round_threaded", n), &n, |b, &n| {
            let agents: Vec<Beacon> = (0..n).map(|_| Beacon(Opinion::One)).collect();
            let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid");
            let config = SimulationConfig::new(n).with_seed(3).with_threads(4);
            let mut sim = Simulation::new(agents, channel, config).expect("valid simulation");
            b.iter(|| sim.step().metrics.messages_sent);
        });
    }

    // One full engine round at n = 10⁵ with a Byzantine tenth injected:
    // the cost of the fault path (role lookups, forced sends, delivery
    // gating) over the honest `engine_round_all_send/100000` round.
    group.bench_function("faulty_round_n1e5", |b| {
        let n = 100_000;
        let agents: Vec<Beacon> = (0..n).map(|_| Beacon(Opinion::One)).collect();
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid");
        let config = SimulationConfig::new(n)
            .with_seed(3)
            .with_faults("byz:0.1".parse().expect("valid directive"));
        let mut sim = Simulation::new(agents, channel, config).expect("valid simulation");
        b.iter(|| sim.step().metrics.messages_sent);
    });

    // End-to-end cost of the spec layer itself: protocol resolution plus one
    // tiny rumor trial through `ProtocolRegistry::run_trial` — the only path
    // any experiment cell takes since the spec migration.  The trial counter
    // increments so the registry cannot amortise anything across iterations;
    // a regression here taxes every cell of every sweep.
    group.bench_function("registry_dispatch", |b| {
        let registry = sweeps::ProtocolRegistry::builtin();
        let spec = sweeps::ScenarioSpec {
            protocol: "rumor".into(),
            backend: flip_model::Backend::Agents,
            trials: 1,
            base_seed: 9,
            point: 0,
            rounds: 80,
            params: std::collections::BTreeMap::from([
                ("n".to_string(), 64.0),
                ("epsilon".to_string(), 0.25),
                ("informed".to_string(), 4.0),
            ]),
            faults: String::new(),
        };
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            registry
                .run_trial(&spec, trial)
                .expect("rumor trial runs")
                .len()
        });
    });

    group.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
