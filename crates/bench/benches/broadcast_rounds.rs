//! E1 (Theorem 2.17): broadcast cost versus population size, plus the
//! regenerated rounds-vs-n table.

use bench::{announce, bench_config};
use breathe::{BroadcastProtocol, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flip_model::Opinion;

fn broadcast_rounds(c: &mut Criterion) {
    announce(&experiments::specs::e01_table(&bench_config()).to_markdown());

    let mut group = c.benchmark_group("e01_broadcast_rounds_vs_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[250usize, 500, 1_000] {
        let params = Params::practical(n, 0.25).expect("valid parameters");
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        group.bench_with_input(BenchmarkId::from_parameter(n), &protocol, |b, protocol| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                protocol.run_with_seed(seed).expect("run succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, broadcast_rounds);
criterion_main!(benches);
