//! E4–E6 (Claims 2.2, 2.4, 2.8; Lemma 2.3): Stage I seeding, layer growth and
//! bias decay, plus the regenerated tables.

use bench::{announce, bench_config};
use breathe::{BroadcastProtocol, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use flip_model::Opinion;

fn stage1_bias(c: &mut Criterion) {
    let cfg = bench_config();
    announce(&experiments::specs::e04_table(&cfg).to_markdown());
    announce(&experiments::specs::e06_table(&cfg).to_markdown());

    let params = Params::practical(800, 0.3).expect("valid parameters");
    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let mut group = c.benchmark_group("e04_e06_stage1_detailed_run");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("detailed_broadcast_n800_eps0.3", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            protocol.run_detailed(seed).expect("run succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, stage1_bias);
criterion_main!(benches);
