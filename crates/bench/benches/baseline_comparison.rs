//! E10 (§1.2, §1.6): breathe versus the baseline protocols, plus the
//! regenerated comparison table.

use baselines::{
    ForwardingProtocol, NoisyVoterProtocol, TwoChoicesProtocol, WaitForSourceProtocol,
};
use bench::{announce, bench_config};
use breathe::{BroadcastProtocol, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use flip_model::Opinion;

fn baseline_comparison(c: &mut Criterion) {
    announce(&experiments::specs::e10_table(&bench_config()).to_markdown());

    let n = 500;
    let epsilon = 0.25;
    let params = Params::practical(n, epsilon).expect("valid parameters");
    let budget = params.total_rounds();

    let mut group = c.benchmark_group("e10_protocol_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let breathe_protocol = BroadcastProtocol::new(params, Opinion::One);
    group.bench_function("breathe", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            breathe_protocol.run_with_seed(seed).expect("run succeeds")
        });
    });

    let forwarding = ForwardingProtocol::new(n, epsilon, budget).expect("valid");
    group.bench_function("immediate_forwarding", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            forwarding
                .run_with_seed(Opinion::One, seed)
                .expect("run succeeds")
        });
    });

    let wait = WaitForSourceProtocol::new(n, epsilon, budget).expect("valid");
    group.bench_function("wait_for_source", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            wait.run_with_seed(Opinion::One, seed)
                .expect("run succeeds")
        });
    });

    let two_choices = TwoChoicesProtocol::new(n, epsilon, budget).expect("valid");
    group.bench_function("two_choices", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            two_choices
                .run_with_seed(Opinion::One, n / 2 + 1, seed)
                .expect("run succeeds")
        });
    });

    let voter = NoisyVoterProtocol::new(n, epsilon, budget).expect("valid");
    group.bench_function("noisy_voter", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            voter
                .run_with_seed(Opinion::One, seed)
                .expect("run succeeds")
        });
    });

    group.finish();
}

criterion_group!(benches, baseline_comparison);
criterion_main!(benches);
