//! E9 (Theorem 3.1): the cost of removing the global clock, plus the
//! regenerated overhead table.

use bench::{announce, bench_config};
use breathe::{AsyncBroadcastProtocol, AsyncVariant, BroadcastProtocol, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use flip_model::Opinion;

fn async_overhead(c: &mut Criterion) {
    announce(&experiments::specs::e09_table(&bench_config()).to_markdown());

    let params = Params::practical(400, 0.3).expect("valid parameters");
    let mut group = c.benchmark_group("e09_async_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let sync = BroadcastProtocol::new(params.clone(), Opinion::One);
    group.bench_function("fully_synchronous", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            sync.run_with_seed(seed).expect("run succeeds")
        });
    });

    let offsets = AsyncBroadcastProtocol::new(
        params.clone(),
        Opinion::One,
        AsyncVariant::BoundedOffsets { max_offset: 18 },
    );
    group.bench_function("bounded_offsets", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            offsets.run_with_seed(seed).expect("run succeeds")
        });
    });

    let resync = AsyncBroadcastProtocol::new(params, Opinion::One, AsyncVariant::Resynchronised);
    group.bench_function("resynchronised", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            resync.run_with_seed(seed).expect("run succeeds")
        });
    });

    group.finish();
}

criterion_group!(benches, async_overhead);
criterion_main!(benches);
