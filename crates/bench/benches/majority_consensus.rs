//! E8 (Corollary 2.18): noisy majority-consensus, plus the regenerated
//! success table.

use bench::{announce, bench_config};
use breathe::{InitialSet, MajorityConsensusProtocol, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flip_model::Opinion;

fn majority_consensus(c: &mut Criterion) {
    announce(&experiments::specs::e08_table(&bench_config()).to_markdown());

    let params = Params::practical(600, 0.3).expect("valid parameters");
    let mut group = c.benchmark_group("e08_majority_consensus");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &set_size in &[60usize, 200] {
        let initial = InitialSet::with_bias(set_size, 0.2).expect("valid bias");
        let protocol = MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial)
            .expect("valid initial set");
        group.bench_with_input(
            BenchmarkId::from_parameter(set_size),
            &protocol,
            |b, protocol| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    protocol.run_with_seed(seed).expect("run succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, majority_consensus);
criterion_main!(benches);
