//! E7 (Lemmas 2.11 and 2.14): the Stage II majority boost, plus the
//! regenerated boost tables.

use bench::{announce, bench_config};
use breathe::Stage2State;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flip_model::{Opinion, SimRng};
use rand::Rng;

/// One simulated Stage II phase for a single agent: receive `2γ` noisy samples
/// from a population with the given bias, then take the end-of-phase majority.
fn one_boost_phase(gamma: u64, epsilon: f64, delta: f64, rng: &mut SimRng) -> Option<Opinion> {
    let mut state = Stage2State::new();
    state.adopt(Some(Opinion::Zero));
    let flip = 0.5 - epsilon;
    for _ in 0..(2 * gamma) {
        let correct = rng.gen::<f64>() < 0.5 + delta;
        let mut bit = if correct { Opinion::One } else { Opinion::Zero };
        if rng.gen::<f64>() < flip {
            bit = bit.flipped();
        }
        state.deliver(bit);
    }
    state.end_phase(2 * gamma, gamma, rng);
    state.opinion()
}

fn stage2_boost(c: &mut Criterion) {
    let cfg = bench_config();
    announce(&experiments::specs::e07a_table(&cfg).to_markdown());
    announce(&experiments::specs::e07b_table(&cfg).to_markdown());

    let mut group = c.benchmark_group("e07_stage2_boost_phase");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &gamma in &[51u64, 151, 451] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            let mut rng = SimRng::from_seed(7);
            b.iter(|| one_boost_phase(gamma, 0.2, 0.05, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, stage2_boost);
criterion_main!(benches);
