//! Benchmarks of the dense counts-based engine: the million-agent regime the
//! per-agent engine cannot reach, plus a head-to-head round cost at a size
//! both engines handle.  `dense_engine/*` entries are hot-path gated by
//! `bench/baseline.json` (see `src/bin/bench_gate.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flip_model::{
    BinarySymmetricChannel, DenseSimulation, HybridSimulation, MajoritySamplerProtocol, RumorAgent,
    RumorProtocol, SimulationConfig, StratifiedPopulation, StratifiedSimulation,
    ZealotRumorProtocol,
};

fn rumor_sim(n: u64, seed: u64) -> DenseSimulation<RumorProtocol, BinarySymmetricChannel> {
    let population = RumorProtocol::population(n, 0, n / 1_000);
    let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
    let config = SimulationConfig::new(n as usize).with_seed(seed);
    DenseSimulation::new(RumorProtocol, channel, population, config).expect("valid simulation")
}

fn dense_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_engine");
    group.sample_size(10);

    // A single round at growing n: per-round cost should be flat in n.
    for &n in &[10_000u64, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("step", n), &n, |b, &n| {
            let mut sim = rumor_sim(n, 1);
            b.iter(|| sim.step().metrics.messages_sent);
        });
    }

    // The acceptance workload: a full 500-round run at n = 10^6, including
    // simulation construction.
    group.bench_function("run500_n1e6", |b| {
        b.iter(|| {
            let mut sim = rumor_sim(1_000_000, 2);
            sim.run(500);
            sim.census().active()
        });
    });

    // Stage II boosting over a ~600-state machine: the worst-case state-space
    // size the experiments use.
    group.bench_function("majority_boost_n1e6", |b| {
        let sampler = MajoritySamplerProtocol::new(23);
        b.iter(|| {
            let population = sampler.population(490_000, 510_000);
            let channel = BinarySymmetricChannel::from_epsilon(0.3).expect("valid epsilon");
            let config = SimulationConfig::new(1_000_000).with_seed(3);
            let mut sim = DenseSimulation::new(sampler, channel, population, config)
                .expect("valid simulation");
            sim.run(23 * 10);
            sim.census().holding(flip_model::Opinion::One)
        });
    });

    // One heterogeneous two-stratum round at n = 10^6: per-round cost is
    // O(#strata × #states), so this should sit within a small factor of the
    // single-stratum `step` cost.
    group.bench_function("stratified_zealot_step_n1e6", |b| {
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let population = ZealotRumorProtocol::population(1_000_000, 0, 1_000, 100_000);
        let config = SimulationConfig::new(1_000_000).with_seed(4);
        let mut sim =
            StratifiedSimulation::new(ZealotRumorProtocol, vec![channel; 2], population, config)
                .expect("valid simulation");
        b.iter(|| sim.step().metrics.messages_sent);
    });

    // One hybrid round at n = 10^6 with 64 tracked agents: the tracked loop
    // adds O(k) per-message work on top of the dense bulk's binomials.
    group.bench_function("hybrid_round", |b| {
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let tracked = RumorAgent::population(64, 0, 32);
        let bulk = StratifiedPopulation::single(RumorProtocol::population(999_936, 0, 968));
        let config = SimulationConfig::new(1_000_000).with_seed(5);
        let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config)
            .expect("valid simulation");
        b.iter(|| sim.step().metrics.messages_sent);
    });

    group.finish();
}

criterion_group!(benches, dense_engine);
criterion_main!(benches);
