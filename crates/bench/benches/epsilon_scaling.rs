//! E2 (Theorem 2.17): broadcast cost versus the noise margin `ε`, plus the
//! regenerated rounds-vs-epsilon table.

use bench::{announce, bench_config};
use breathe::{BroadcastProtocol, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flip_model::Opinion;

fn epsilon_scaling(c: &mut Criterion) {
    announce(&experiments::specs::e02_table(&bench_config()).to_markdown());

    let mut group = c.benchmark_group("e02_broadcast_rounds_vs_epsilon");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &epsilon in &[0.2f64, 0.3, 0.4] {
        let params = Params::practical(500, epsilon).expect("valid parameters");
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        group.bench_with_input(
            BenchmarkId::from_parameter(epsilon),
            &protocol,
            |b, protocol| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    protocol.run_with_seed(seed).expect("run succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, epsilon_scaling);
criterion_main!(benches);
