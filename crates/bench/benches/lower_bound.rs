//! E11 and E12 (§1.4, §1.6): the per-hop deterioration curve and the
//! two-party `Θ(1/ε²)` sample bound, plus the regenerated tables.

use baselines::simulate_chain;
use bench::{announce, bench_config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sweeps::samples_for_confidence;

fn lower_bound(c: &mut Criterion) {
    let cfg = bench_config();
    announce(&experiments::specs::e11_table(&cfg).to_markdown());
    announce(&experiments::specs::e12_table(&cfg).to_markdown());

    let mut group = c.benchmark_group("e11_e12_lower_bound");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &epsilon in &[0.1f64, 0.2, 0.4] {
        group.bench_with_input(
            BenchmarkId::new("samples_for_99pct", epsilon),
            &epsilon,
            |b, &eps| b.iter(|| samples_for_confidence(eps, 0.99)),
        );
        group.bench_with_input(
            BenchmarkId::new("chain_simulation_8hops", epsilon),
            &epsilon,
            |b, &eps| b.iter(|| simulate_chain(eps, 8, 10_000, 3).expect("valid")),
        );
    }
    group.finish();
}

criterion_group!(benches, lower_bound);
criterion_main!(benches);
