//! E3 (Theorem 2.17): message/bit complexity, plus the regenerated table.

use bench::{announce, bench_config};
use breathe::{BroadcastProtocol, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use flip_model::Opinion;

fn message_complexity(c: &mut Criterion) {
    announce(&experiments::specs::e03_table(&bench_config()).to_markdown());

    let params = Params::practical(1_000, 0.25).expect("valid parameters");
    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let mut group = c.benchmark_group("e03_message_complexity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("broadcast_n1000_eps0.25", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let outcome = protocol.run_with_seed(seed).expect("run succeeds");
            outcome.messages_sent
        });
    });
    group.finish();
}

criterion_group!(benches, message_complexity);
criterion_main!(benches);
