//! Memory accounting for the agent state machine.
//!
//! The paper (§1.5) notes that its protocols can be implemented with
//! `O(log log n + log(1/ε))` bits of memory per agent: a phase counter over
//! `O(log n / ε²)` rounds can be maintained with `O(log log n + log(1/ε))`
//! bits, the current opinion takes one bit, and the per-phase sample counters
//! take `O(log(1/ε))` bits (plus `O(log log n)` for the final phase).  This
//! module quantifies the footprint of the concrete state machine used here so
//! that experiments can report it alongside the theoretical bound.

use crate::params::Params;
use crate::schedule::Schedule;

/// Bits of per-agent state required by the protocol, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bits to count rounds within the longest phase.
    pub round_in_phase_bits: u32,
    /// Bits to store the current phase index.
    pub phase_index_bits: u32,
    /// Bits to store the activation level.
    pub level_bits: u32,
    /// Bits to store the current opinion (present/absent + value).
    pub opinion_bits: u32,
    /// Bits for the Stage II receive counters (zeros and ones of one phase).
    pub sample_counter_bits: u32,
}

impl MemoryFootprint {
    /// Total bits of protocol state per agent.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.round_in_phase_bits
            + self.phase_index_bits
            + self.level_bits
            + self.opinion_bits
            + self.sample_counter_bits
    }
}

/// Number of bits needed to represent values in `0..=max`.
fn bits_for(max: u64) -> u32 {
    64 - max.max(1).leading_zeros()
}

/// Computes the concrete memory footprint of the agent state machine for the
/// given parameters.
#[must_use]
pub fn footprint(params: &Params) -> MemoryFootprint {
    let schedule = Schedule::broadcast(params);
    let longest_phase = schedule.phases().iter().map(|p| p.len).max().unwrap_or(1);
    let phase_count = schedule.phase_count() as u64;
    let level_count = schedule.spreading_phase_count() as u64;
    MemoryFootprint {
        round_in_phase_bits: bits_for(longest_phase),
        phase_index_bits: bits_for(phase_count),
        level_bits: bits_for(level_count),
        opinion_bits: 2,
        sample_counter_bits: 2 * bits_for(longest_phase),
    }
}

/// The paper's asymptotic memory bound `log₂ log₂ n + log₂(1/ε)` (in bits,
/// without constant factors), for comparison against [`footprint`].
#[must_use]
pub fn theoretical_bits(n: usize, epsilon: f64) -> f64 {
    (n as f64).log2().log2().max(0.0) + (1.0 / epsilon).log2().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_counts_correctly() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(0), 1);
    }

    #[test]
    fn footprint_total_is_the_sum_of_components() {
        let params = Params::practical(1_000, 0.25).unwrap();
        let fp = footprint(&params);
        assert_eq!(
            fp.total_bits(),
            fp.round_in_phase_bits
                + fp.phase_index_bits
                + fp.level_bits
                + fp.opinion_bits
                + fp.sample_counter_bits
        );
        assert!(fp.total_bits() < 128, "state should be tiny: {fp:?}");
    }

    #[test]
    fn footprint_grows_slowly_with_n() {
        let eps = 0.25;
        let small = footprint(&Params::practical(1_000, eps).unwrap());
        let large = footprint(&Params::practical(100_000, eps).unwrap());
        // Doubling-log growth: going from 10^3 to 10^5 agents adds only a few bits.
        assert!(large.total_bits() <= small.total_bits() + 8);
    }

    #[test]
    fn theoretical_bits_increase_with_noise() {
        let low_noise = theoretical_bits(10_000, 0.4);
        let high_noise = theoretical_bits(10_000, 0.05);
        assert!(high_noise > low_noise);
    }
}
