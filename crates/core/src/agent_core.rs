//! The phase-driven protocol core shared by the synchronous and
//! clock-shifted agents.

use std::sync::Arc;

use flip_model::{Opinion, SimRng};

use crate::schedule::{Schedule, StageKind};
use crate::stage1::Stage1State;
use crate::stage2::Stage2State;

/// The protocol logic of one agent, indexed by phase rather than by round.
///
/// Both the fully-synchronous agent ([`BreatheAgent`](crate::BreatheAgent))
/// and the local-clock agents of §3 ([`OffsetAgent`](crate::OffsetAgent),
/// [`ResyncAgent`](crate::ResyncAgent)) drive this same core; they differ only
/// in how they map engine rounds to phases.  This mirrors the paper's
/// correctness argument for the clock-shifted variant: the decisions of an
/// agent depend only on the *multiset* of messages it receives in each phase,
/// never on global time.
#[derive(Debug, Clone)]
pub struct ProtocolCore {
    schedule: Arc<Schedule>,
    stage1: Stage1State,
    stage2: Stage2State,
}

impl ProtocolCore {
    /// Creates the core for one agent.
    #[must_use]
    pub fn new(schedule: Arc<Schedule>, stage1: Stage1State) -> Self {
        Self {
            schedule,
            stage1,
            stage2: Stage2State::new(),
        }
    }

    /// The schedule this core follows.
    #[must_use]
    pub fn schedule(&self) -> &Arc<Schedule> {
        &self.schedule
    }

    /// The Stage I state (activation level, initial opinion).
    #[must_use]
    pub fn stage1(&self) -> &Stage1State {
        &self.stage1
    }

    /// The agent's current opinion: the Stage II opinion once Stage II has
    /// begun, otherwise the Stage I initial opinion.
    #[must_use]
    pub fn opinion(&self) -> Option<Opinion> {
        self.stage2
            .opinion()
            .or_else(|| self.stage1.initial_opinion())
    }

    /// What to push during the phase with the given index (into the schedule).
    #[must_use]
    pub fn send_in_phase(&self, phase: usize) -> Option<Opinion> {
        let spec = &self.schedule.phases()[phase];
        match spec.kind {
            StageKind::Spreading => self.stage1.send(spec.index_in_stage),
            StageKind::Boosting => self.stage2.send(),
        }
    }

    /// Handles a message attributed to the phase with the given index.
    pub fn deliver_in_phase(&mut self, phase: usize, message: Opinion, rng: &mut SimRng) {
        let spec = &self.schedule.phases()[phase];
        match spec.kind {
            StageKind::Spreading => self.stage1.deliver(spec.index_in_stage, message, rng),
            StageKind::Boosting => self.stage2.deliver(message),
        }
    }

    /// Handles the end of the phase with the given index.
    pub fn end_phase(&mut self, phase: usize, rng: &mut SimRng) {
        let spec = self.schedule.phases()[phase];
        match spec.kind {
            StageKind::Spreading => {
                self.stage1.end_phase(spec.index_in_stage);
                if phase == self.schedule.last_spreading_phase() {
                    // Hand the Stage I initial opinion over to Stage II.
                    self.stage2.adopt(self.stage1.initial_opinion());
                }
            }
            StageKind::Boosting => {
                let samples = spec.samples.expect("boosting phases carry sample counts");
                self.stage2.end_phase(spec.len, samples, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn core(informed: bool) -> ProtocolCore {
        let params = Params::practical(500, 0.3).unwrap();
        let schedule = Arc::new(Schedule::broadcast(&params));
        let stage1 = if informed {
            Stage1State::informed(Opinion::One)
        } else {
            Stage1State::uninformed()
        };
        ProtocolCore::new(schedule, stage1)
    }

    #[test]
    fn informed_core_sends_in_every_spreading_phase() {
        let core = core(true);
        for (idx, phase) in core.schedule().phases().iter().enumerate() {
            if phase.kind == StageKind::Spreading {
                assert_eq!(core.send_in_phase(idx), Some(Opinion::One));
            }
        }
    }

    #[test]
    fn uninformed_core_is_silent_until_activated_and_handover_reaches_stage2() {
        let mut core = core(false);
        let mut rng = SimRng::from_seed(1);
        let last_spreading = core.schedule().last_spreading_phase();
        assert_eq!(core.send_in_phase(0), None);
        assert_eq!(core.opinion(), None);

        // Activate in spreading phase 0.
        core.deliver_in_phase(0, Opinion::Zero, &mut rng);
        core.end_phase(0, &mut rng);
        assert_eq!(core.opinion(), Some(Opinion::Zero));
        assert_eq!(core.send_in_phase(1), Some(Opinion::Zero));

        // Walk through the remaining spreading phases; opinion is handed over.
        for idx in 1..=last_spreading {
            core.end_phase(idx, &mut rng);
        }
        let first_boost = last_spreading + 1;
        assert_eq!(core.send_in_phase(first_boost), Some(Opinion::Zero));
    }

    #[test]
    fn boosting_phase_updates_opinion_from_samples() {
        let mut core = core(true);
        let mut rng = SimRng::from_seed(2);
        let last_spreading = core.schedule().last_spreading_phase();
        for idx in 0..=last_spreading {
            core.end_phase(idx, &mut rng);
        }
        let boost = last_spreading + 1;
        let spec = core.schedule().phases()[boost];
        // Flood the boosting phase with the opposite opinion.
        for _ in 0..spec.len {
            core.deliver_in_phase(boost, Opinion::Zero, &mut rng);
        }
        core.end_phase(boost, &mut rng);
        assert_eq!(core.opinion(), Some(Opinion::Zero));
    }

    #[test]
    fn spreading_messages_never_touch_stage2_counters() {
        let mut core = core(false);
        let mut rng = SimRng::from_seed(3);
        core.deliver_in_phase(0, Opinion::One, &mut rng);
        // Ending a boosting phase without having received anything there leaves
        // the (absent) opinion untouched.
        let boost = core.schedule().last_spreading_phase() + 1;
        core.end_phase(boost, &mut rng);
        assert_eq!(core.opinion(), None);
    }
}
