//! The **Breathe before Speaking** protocols (Feinerman, Haeupler, Korman;
//! PODC 2014): asymptotically optimal noisy broadcast and noisy
//! majority-consensus in the [Flip model](flip_model).
//!
//! The protocol has two stages:
//!
//! * **Stage I — spreading ("breathe")**: information propagates in layers.
//!   An agent activated in phase `i` stays silent until the phase ends, adopts
//!   the content of one uniformly random message it heard in that phase, and
//!   only then starts pushing that opinion.  Phase lengths of `Θ(1/ε²)` rounds
//!   make each new layer more than `1/ε²` times larger than the previous one,
//!   which outpaces the per-hop reliability loss of the noisy channel and
//!   leaves the whole population with a bias of `Ω(√(log n / n))` towards the
//!   source's opinion.
//! * **Stage II — boosting ("speak")**: `O(log n)` phases of repeated noisy
//!   majority sampling amplify that tiny bias to full consensus, with a final
//!   `Θ(log n / ε²)`-sample majority vote pinning every agent to the correct
//!   opinion with high probability.
//!
//! Both stages together take `O(log n / ε²)` rounds and `O(n log n / ε²)`
//! single-bit messages — matching the lower bounds of paper §1.4.
//!
//! # Quick start
//!
//! ```
//! use breathe::{BroadcastProtocol, Params};
//! use flip_model::Opinion;
//!
//! # fn main() -> Result<(), flip_model::FlipError> {
//! let params = Params::practical(500, 0.25)?;
//! let protocol = BroadcastProtocol::new(params, Opinion::One);
//! let outcome = protocol.run_with_seed(42)?;
//! assert!(outcome.fraction_correct > 0.9);
//! println!(
//!     "{} / {} agents correct after {} rounds and {} bits",
//!     (outcome.fraction_correct * outcome.n as f64).round(),
//!     outcome.n,
//!     outcome.total_rounds,
//!     outcome.messages_sent,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! The majority-consensus variant ([`MajorityConsensusProtocol`]) starts from
//! an initial opinionated set instead of a single source, and the
//! [`AsyncBroadcastProtocol`] removes the global-clock assumption (paper §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent_core;
mod async_clock;
mod broadcast;
mod majority;
mod memory;
mod params;
mod schedule;
mod stage1;
mod stage2;

pub use agent_core::ProtocolCore;
pub use async_clock::{
    AsyncBroadcastProtocol, AsyncOutcome, AsyncVariant, OffsetAgent, ResyncAgent,
};
pub use broadcast::{
    phase_kind, BreatheAgent, BroadcastOutcome, BroadcastProtocol, DetailedOutcome, LevelStats,
};
pub use majority::{InitialSet, MajorityConsensusProtocol, MajorityOutcome};
pub use memory::{footprint, theoretical_bits, MemoryFootprint};
pub use params::{Multipliers, Params};
pub use schedule::{PhaseSpec, Position, Schedule, StageKind};
pub use stage1::Stage1State;
pub use stage2::Stage2State;

/// The error type returned by this crate (re-exported from [`flip_model`]).
pub use flip_model::FlipError;
