//! The noisy broadcast protocol (paper §2, Theorem 2.17) in the
//! fully-synchronous setting.

use std::sync::Arc;

use flip_model::{
    Agent, BinarySymmetricChannel, Census, FlipError, Opinion, OpinionDelta, Round, SimRng,
    Simulation, SimulationConfig,
};

use crate::agent_core::ProtocolCore;
use crate::params::Params;
use crate::schedule::{Position, Schedule, StageKind};
use crate::stage1::Stage1State;

/// A fully-synchronous agent running the two-stage protocol.
///
/// The agent maps the engine's global round directly to the phase schedule —
/// this is the fully-synchronous setting of paper §2 where all clocks start at
/// zero together.
#[derive(Debug, Clone)]
pub struct BreatheAgent {
    core: ProtocolCore,
}

impl BreatheAgent {
    /// Creates an agent with no initial information.
    #[must_use]
    pub fn uninformed(schedule: Arc<Schedule>) -> Self {
        Self {
            core: ProtocolCore::new(schedule, Stage1State::uninformed()),
        }
    }

    /// Creates an initially informed agent (the source, or a member of the
    /// initial set of the majority-consensus problem).
    #[must_use]
    pub fn informed(schedule: Arc<Schedule>, opinion: Opinion) -> Self {
        Self {
            core: ProtocolCore::new(schedule, Stage1State::informed(opinion)),
        }
    }

    /// The spreading phase in which the agent was activated, if any.
    #[must_use]
    pub fn level(&self) -> Option<usize> {
        self.core.stage1().level()
    }

    /// The initial opinion adopted at the end of the activation phase, if any.
    #[must_use]
    pub fn initial_opinion(&self) -> Option<Opinion> {
        self.core.stage1().initial_opinion()
    }

    /// Whether the agent started the execution already informed.
    #[must_use]
    pub fn is_initially_informed(&self) -> bool {
        self.core.stage1().is_initially_informed()
    }
}

impl Agent for BreatheAgent {
    fn send(&mut self, round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        match self.core.schedule().position(round) {
            Position::Active { phase, .. } => self.core.send_in_phase(phase),
            Position::Waiting { .. } | Position::Done => None,
        }
    }

    fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng) -> OpinionDelta {
        let before = self.core.opinion();
        match self.core.schedule().position(round) {
            Position::Active { phase, .. } | Position::Waiting { next_phase: phase } => {
                self.core.deliver_in_phase(phase, message, rng);
            }
            Position::Done => {}
        }
        OpinionDelta::between(before, self.core.opinion())
    }

    fn end_round(&mut self, round: Round, rng: &mut SimRng) -> OpinionDelta {
        if let Position::Active {
            phase,
            is_last_round: true,
            ..
        } = self.core.schedule().position(round)
        {
            let before = self.core.opinion();
            self.core.end_phase(phase, rng);
            OpinionDelta::between(before, self.core.opinion())
        } else {
            OpinionDelta::NONE
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        self.core.opinion()
    }

    fn is_done(&self) -> bool {
        false
    }
}

/// The result of one noisy-broadcast execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastOutcome {
    /// Population size.
    pub n: usize,
    /// Noise margin `ε`.
    pub epsilon: f64,
    /// The correct opinion held by the source.
    pub correct: Opinion,
    /// Rounds executed in total.
    pub total_rounds: u64,
    /// Rounds spent in Stage I.
    pub stage1_rounds: u64,
    /// Total messages (= bits) pushed.
    pub messages_sent: u64,
    /// Agents holding *any* opinion at the end of Stage I.
    pub active_after_stage1: usize,
    /// Fraction of all agents holding the correct opinion at the end of Stage I.
    pub fraction_correct_after_stage1: f64,
    /// Fraction of all agents holding the correct opinion at the end.
    pub fraction_correct: f64,
    /// Whether every agent ended with the correct opinion.
    pub all_correct: bool,
}

/// Per-level statistics of Stage I (one entry per spreading phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Agents activated during this spreading phase (`Y_i` in the paper).
    pub activated: usize,
    /// Among them, agents whose initial opinion equals the correct opinion (`Z_i`).
    pub initially_correct: usize,
}

impl LevelStats {
    /// The level's bias towards the correct opinion
    /// (`ε_i` in the paper: fraction correct minus one half).
    #[must_use]
    pub fn bias(&self) -> f64 {
        if self.activated == 0 {
            0.0
        } else {
            self.initially_correct as f64 / self.activated as f64 - 0.5
        }
    }
}

/// Detailed per-phase view of one broadcast execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedOutcome {
    /// The headline outcome.
    pub outcome: BroadcastOutcome,
    /// Stage I statistics per level (index = spreading phase).
    pub levels: Vec<LevelStats>,
    /// Fraction of agents holding the correct opinion after each phase of the
    /// schedule (Stage I and Stage II phases alike, in order).
    pub fraction_correct_after_phase: Vec<f64>,
    /// Number of active agents after each phase of the schedule.
    pub active_after_phase: Vec<usize>,
}

/// Runner for the noisy broadcast protocol of Theorem 2.17.
///
/// # Example
///
/// ```
/// use breathe::{BroadcastProtocol, Params};
/// use flip_model::Opinion;
///
/// let params = Params::practical(400, 0.3).unwrap();
/// let outcome = BroadcastProtocol::new(params, Opinion::One)
///     .run_with_seed(1)
///     .unwrap();
/// assert!(outcome.fraction_correct > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct BroadcastProtocol {
    params: Params,
    correct: Opinion,
    schedule: Arc<Schedule>,
}

impl BroadcastProtocol {
    /// Creates a broadcast runner whose source holds `correct`.
    #[must_use]
    pub fn new(params: Params, correct: Opinion) -> Self {
        let schedule = Arc::new(Schedule::broadcast(&params));
        Self {
            params,
            correct,
            schedule,
        }
    }

    /// The parameters of this instance.
    #[must_use]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The phase schedule of this instance.
    #[must_use]
    pub fn schedule(&self) -> &Arc<Schedule> {
        &self.schedule
    }

    /// The correct opinion held by the source.
    #[must_use]
    pub fn correct(&self) -> Opinion {
        self.correct
    }

    /// Builds the population: agent `0` is the source, everyone else is uninformed.
    #[must_use]
    pub fn build_agents(&self) -> Vec<BreatheAgent> {
        let mut agents = Vec::with_capacity(self.params.n());
        agents.push(BreatheAgent::informed(self.schedule.clone(), self.correct));
        for _ in 1..self.params.n() {
            agents.push(BreatheAgent::uninformed(self.schedule.clone()));
        }
        agents
    }

    /// Builds the simulation (agents, channel and configuration) for one run.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from channel or engine construction.
    pub fn build_simulation(
        &self,
        seed: u64,
    ) -> Result<Simulation<BreatheAgent, BinarySymmetricChannel>, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.params.epsilon())?;
        let config = SimulationConfig::new(self.params.n())
            .with_seed(seed)
            .with_reference(self.correct);
        Simulation::new(self.build_agents(), channel, config)
    }

    /// Runs one execution and reports the headline outcome.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from simulation construction.
    pub fn run_with_seed(&self, seed: u64) -> Result<BroadcastOutcome, FlipError> {
        let mut sim = self.build_simulation(seed)?;
        Ok(self.run_simulation(&mut sim))
    }

    /// Runs an already-built simulation (see [`Self::build_simulation`])
    /// through the full schedule and reports the headline outcome.
    ///
    /// Splitting construction from execution lets callers configure the
    /// engine first — enable telemetry, say — without changing the run:
    /// `run_with_seed` is exactly `build_simulation` + `run_simulation`.
    pub fn run_simulation(
        &self,
        sim: &mut Simulation<BreatheAgent, BinarySymmetricChannel>,
    ) -> BroadcastOutcome {
        let stage1_rounds = self.schedule.spreading_rounds();
        sim.run(stage1_rounds);
        let stage1_census = sim.census();
        sim.run(self.schedule.total_rounds() - stage1_rounds);
        self.outcome_from(&sim.census(), &stage1_census, sim.metrics().messages_sent)
    }

    /// Runs one execution, recording per-phase statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from simulation construction.
    pub fn run_detailed(&self, seed: u64) -> Result<DetailedOutcome, FlipError> {
        let mut sim = self.build_simulation(seed)?;
        let mut fraction_correct_after_phase = Vec::with_capacity(self.schedule.phase_count());
        let mut active_after_phase = Vec::with_capacity(self.schedule.phase_count());
        let mut stage1_census = Census::from_counts(0, 0, self.params.n());
        for (idx, phase) in self.schedule.phases().iter().enumerate() {
            sim.run(phase.len);
            let census = sim.census();
            fraction_correct_after_phase.push(census.fraction_correct(self.correct));
            active_after_phase.push(census.active());
            if idx == self.schedule.last_spreading_phase() {
                stage1_census = census;
            }
        }
        let final_census = sim.census();
        let messages = sim.metrics().messages_sent;
        let levels = self.level_stats(sim.agents());
        Ok(DetailedOutcome {
            outcome: self.outcome_from(&final_census, &stage1_census, messages),
            levels,
            fraction_correct_after_phase,
            active_after_phase,
        })
    }

    fn level_stats(&self, agents: &[BreatheAgent]) -> Vec<LevelStats> {
        let mut levels = vec![LevelStats::default(); self.schedule.spreading_phase_count()];
        for agent in agents {
            if agent.is_initially_informed() {
                continue;
            }
            if let (Some(level), Some(op)) = (agent.level(), agent.initial_opinion()) {
                if level < levels.len() {
                    levels[level].activated += 1;
                    if op == self.correct {
                        levels[level].initially_correct += 1;
                    }
                }
            }
        }
        levels
    }

    fn outcome_from(
        &self,
        final_census: &Census,
        stage1_census: &Census,
        messages_sent: u64,
    ) -> BroadcastOutcome {
        BroadcastOutcome {
            n: self.params.n(),
            epsilon: self.params.epsilon(),
            correct: self.correct,
            total_rounds: self.schedule.total_rounds(),
            stage1_rounds: self.schedule.spreading_rounds(),
            messages_sent,
            active_after_stage1: stage1_census.active(),
            fraction_correct_after_stage1: stage1_census.fraction_correct(self.correct),
            fraction_correct: final_census.fraction_correct(self.correct),
            all_correct: final_census.is_unanimous(self.correct),
        }
    }
}

/// Returns the phase kind of the schedule entry `phase` (handy for reports).
#[must_use]
pub fn phase_kind(schedule: &Schedule, phase: usize) -> StageKind {
    schedule.phases()[phase].kind
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_succeeds_on_a_small_noisy_population() {
        let params = Params::practical(300, 0.3).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let outcome = protocol.run_with_seed(11).unwrap();
        assert!(outcome.fraction_correct > 0.95, "outcome = {outcome:?}");
        assert_eq!(outcome.n, 300);
        assert!(outcome.messages_sent > 0);
        assert!(outcome.total_rounds > outcome.stage1_rounds);
    }

    #[test]
    fn broadcast_succeeds_for_both_source_opinions() {
        let params = Params::practical(300, 0.3).unwrap();
        for correct in Opinion::ALL {
            let protocol = BroadcastProtocol::new(params.clone(), correct);
            let outcome = protocol.run_with_seed(5).unwrap();
            assert!(
                outcome.fraction_correct > 0.9,
                "correct = {correct}, outcome = {outcome:?}"
            );
        }
    }

    #[test]
    fn stage1_activates_essentially_everyone() {
        let params = Params::practical(400, 0.3).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::Zero);
        let outcome = protocol.run_with_seed(3).unwrap();
        assert!(
            outcome.active_after_stage1 >= 398,
            "active = {}",
            outcome.active_after_stage1
        );
        // Stage I alone only guarantees a small positive bias, not consensus.
        assert!(outcome.fraction_correct_after_stage1 > 0.5);
    }

    #[test]
    fn detailed_run_reports_per_phase_and_per_level_data() {
        let params = Params::practical(300, 0.3).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let detailed = protocol.run_detailed(7).unwrap();
        assert_eq!(
            detailed.fraction_correct_after_phase.len(),
            protocol.schedule().phase_count()
        );
        assert_eq!(
            detailed.levels.len(),
            protocol.schedule().spreading_phase_count()
        );
        // Phase 0 activates a positive number of agents with a positive bias.
        assert!(detailed.levels[0].activated > 0);
        assert!(detailed.levels[0].bias() > 0.0);
        // The final fraction matches the headline outcome.
        let last = *detailed.fraction_correct_after_phase.last().unwrap();
        assert!((last - detailed.outcome.fraction_correct).abs() < 1e-12);
        // Activation counts never decrease over phases.
        for w in detailed.active_after_phase.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let params = Params::practical(200, 0.35).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let a = protocol.run_with_seed(9).unwrap();
        let b = protocol.run_with_seed(9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn build_agents_has_exactly_one_source() {
        let params = Params::practical(100, 0.35).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let agents = protocol.build_agents();
        assert_eq!(agents.len(), 100);
        assert_eq!(
            agents.iter().filter(|a| a.is_initially_informed()).count(),
            1
        );
        assert_eq!(agents[0].opinion(), Some(Opinion::One));
        assert_eq!(agents[1].opinion(), None);
    }

    #[test]
    fn phase_kind_helper_reports_stages() {
        let params = Params::practical(100, 0.35).unwrap();
        let schedule = Schedule::broadcast(&params);
        assert_eq!(phase_kind(&schedule, 0), StageKind::Spreading);
        assert_eq!(
            phase_kind(&schedule, schedule.phase_count() - 1),
            StageKind::Boosting
        );
    }
}
