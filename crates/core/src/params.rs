//! Protocol parameters derived from the population size `n` and noise margin `ε`.

use flip_model::FlipError;

/// All tunable constants of the two-stage protocol.
///
/// The paper fixes its constants (`s`, `β`, `f` of Stage I; `r`, `γ`, `k` of
/// Stage II) only up to "sufficiently large" multiples of `1/ε²` — the
/// literal values chosen in the proofs (e.g. `r = ⌈2²²/ε²⌉` in §2.2.2) are far
/// larger than anything needed in practice.  `Params` therefore separates the
/// *structure* (which is exactly the paper's) from the *multipliers*, and
/// offers two presets:
///
/// * [`Params::practical`] — calibrated multipliers that preserve the
///   asymptotic shape (`Θ(log n / ε²)` rounds) at laptop-scale populations and
///   succeed with high probability in simulation; used throughout the
///   experiments.
/// * [`Params::paper_strict`] — the literal constants of the paper, provided
///   for completeness (runs are enormous; only sensible for tiny `n`).
///
/// # Derived quantities (paper §2.1.2 and §2.2.2)
///
/// * `βs = ⌈s·ln n⌉` — length of Stage I phase 0 (only the source speaks).
/// * `β` — length of each intermediate Stage I phase.
/// * `βf = ⌈f·ln n⌉` — length of the last Stage I phase.
/// * `T = ⌊ln(n / 2βs) / ln(β + 1)⌋` — number of intermediate phases.
/// * `γ` (odd) — Stage II sample count; each of the first `k` Stage II phases
///   has `2γ` rounds.
/// * `k` — number of doubling phases, `Θ(log n)`.
/// * `m_final` — length of the final Stage II phase, `Θ(log n / ε²)`.
///
/// # Example
///
/// ```
/// use breathe::Params;
///
/// let params = Params::practical(2_000, 0.2).unwrap();
/// assert!(params.stage1_intermediate_phases() <= 4);
/// assert!(params.gamma() % 2 == 1);
/// assert!(params.total_rounds() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    n: usize,
    epsilon: f64,
    /// Stage I: `s = s_mult / ε²`.
    s_mult: f64,
    /// Stage I: `β = β_mult / ε²`.
    beta_mult: f64,
    /// Stage I: `f = f_mult / ε²`.
    f_mult: f64,
    /// Stage II: `γ ≈ γ_mult / ε²` (rounded up to an odd integer).
    gamma_mult: f64,
    /// Stage II: extra doubling phases beyond `⌈log2 √(n / ln n)⌉`.
    extra_boost_phases: usize,
    /// Stage II: final phase length `≈ final_mult · ln n / ε²`.
    final_mult: f64,
}

impl Params {
    /// Practical defaults preserving the paper's structure at simulation scale.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`] if `n < 8` and
    /// [`FlipError::InvalidEpsilon`] if `ε ∉ (0, 1/2]` or `ε < 1/√n`
    /// (the paper requires `ε > n^{-1/2+η}`).
    pub fn practical(n: usize, epsilon: f64) -> Result<Self, FlipError> {
        Self::with_multipliers(n, epsilon, Multipliers::practical())
    }

    /// The literal constants used in the paper's proofs (§2.1.2, §2.2.2).
    ///
    /// These are enormous (`γ ≈ 2²³/ε²`); use only for tiny demonstrations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Params::practical`].
    pub fn paper_strict(n: usize, epsilon: f64) -> Result<Self, FlipError> {
        Self::with_multipliers(n, epsilon, Multipliers::paper_strict())
    }

    /// Builds parameters with explicit multipliers.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::PopulationTooSmall`], [`FlipError::InvalidEpsilon`]
    /// or [`FlipError::InvalidParameter`] when a multiplier is not positive.
    pub fn with_multipliers(
        n: usize,
        epsilon: f64,
        multipliers: Multipliers,
    ) -> Result<Self, FlipError> {
        if n < 8 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon > 0.5 {
            return Err(FlipError::InvalidEpsilon { epsilon });
        }
        if epsilon < 1.0 / (n as f64).sqrt() {
            return Err(FlipError::InvalidEpsilon { epsilon });
        }
        multipliers.validate()?;
        Ok(Self {
            n,
            epsilon,
            s_mult: multipliers.s_mult,
            beta_mult: multipliers.beta_mult,
            f_mult: multipliers.f_mult,
            gamma_mult: multipliers.gamma_mult,
            extra_boost_phases: multipliers.extra_boost_phases,
            final_mult: multipliers.final_mult,
        })
    }

    /// The population size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The noise margin `ε` (each bit is flipped with probability `1/2 − ε`).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Natural logarithm of `n`, the `log n` factor used throughout.
    #[must_use]
    pub fn ln_n(&self) -> f64 {
        (self.n as f64).ln()
    }

    /// `1/ε²`, the noise penalty factor.
    #[must_use]
    pub fn inv_eps_sq(&self) -> f64 {
        1.0 / (self.epsilon * self.epsilon)
    }

    /// Stage I phase 0 length `βs = ⌈s · ln n⌉` (only the source transmits).
    #[must_use]
    pub fn beta_s(&self) -> u64 {
        ((self.s_mult * self.inv_eps_sq() * self.ln_n()).ceil() as u64).max(4)
    }

    /// Stage I intermediate phase length `β = ⌈β_mult / ε²⌉`.
    #[must_use]
    pub fn beta(&self) -> u64 {
        ((self.beta_mult * self.inv_eps_sq()).ceil() as u64).max(2)
    }

    /// Stage I final phase length `βf = ⌈f · ln n⌉`.
    #[must_use]
    pub fn beta_f(&self) -> u64 {
        ((self.f_mult * self.inv_eps_sq() * self.ln_n()).ceil() as u64).max(4)
    }

    /// Number `T` of intermediate Stage I phases:
    /// `T = ⌊ln(n / 2βs) / ln(β + 1)⌋`, clamped to be non-negative.
    #[must_use]
    pub fn stage1_intermediate_phases(&self) -> usize {
        let beta_s = self.beta_s() as f64;
        let beta = self.beta() as f64;
        let ratio = self.n as f64 / (2.0 * beta_s);
        if ratio <= 1.0 {
            return 0;
        }
        (ratio.ln() / (beta + 1.0).ln()).floor() as usize
    }

    /// Stage II sample count `γ` (always odd so majorities are never tied).
    #[must_use]
    pub fn gamma(&self) -> u64 {
        let raw = (self.gamma_mult * self.inv_eps_sq()).ceil() as u64;
        let raw = raw.max(3);
        if raw.is_multiple_of(2) {
            raw + 1
        } else {
            raw
        }
    }

    /// Number `k` of Stage II doubling phases.
    ///
    /// The end-of-Stage-I bias is `Ω(√(ln n / n))`, so
    /// `k = ⌈log₂ √(n / ln n)⌉ + extra` doublings reach a constant bias.
    #[must_use]
    pub fn boost_phases(&self) -> usize {
        let delta1 = (self.ln_n() / self.n as f64).sqrt();
        let k = (1.0 / delta1).log2().ceil().max(1.0) as usize;
        k + self.extra_boost_phases
    }

    /// Length of each of the first `k` Stage II phases: `2γ` rounds.
    #[must_use]
    pub fn boost_phase_len(&self) -> u64 {
        2 * self.gamma()
    }

    /// Number of samples taken by a successful agent in the final Stage II
    /// phase (odd by construction).
    #[must_use]
    pub fn final_samples(&self) -> u64 {
        let half = (self.final_mult * self.ln_n() * self.inv_eps_sq() / 2.0).ceil() as u64;
        let half = half.max(3);
        if half.is_multiple_of(2) {
            half + 1
        } else {
            half
        }
    }

    /// Length of the final Stage II phase (`2 ×` the final sample count).
    #[must_use]
    pub fn final_phase_len(&self) -> u64 {
        2 * self.final_samples()
    }

    /// Total Stage I rounds for the broadcast protocol.
    #[must_use]
    pub fn stage1_rounds(&self) -> u64 {
        self.beta_s() + self.stage1_intermediate_phases() as u64 * self.beta() + self.beta_f()
    }

    /// Total Stage II rounds.
    #[must_use]
    pub fn stage2_rounds(&self) -> u64 {
        self.boost_phases() as u64 * self.boost_phase_len() + self.final_phase_len()
    }

    /// Total rounds of the full broadcast protocol.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.stage1_rounds() + self.stage2_rounds()
    }

    /// The paper's asymptotic round bound `Θ(ln n / ε²)` evaluated without
    /// constants, useful for scaling fits.
    #[must_use]
    pub fn theoretical_round_scale(&self) -> f64 {
        self.ln_n() * self.inv_eps_sq()
    }

    /// The starting Stage I phase `i_A` for the majority-consensus protocol
    /// (Corollary 2.18): `i_A = ln(|A| / ln n) / (2 ln(1/ε))`, clamped to
    /// `[0, T + 1]`.
    #[must_use]
    pub fn majority_start_phase(&self, initial_set: usize) -> usize {
        let t = self.stage1_intermediate_phases();
        if initial_set == 0 {
            return 0;
        }
        let ratio = initial_set as f64 / self.ln_n();
        if ratio <= 1.0 {
            return 0;
        }
        let denom = 2.0 * (1.0 / self.epsilon).ln();
        if denom <= 0.0 {
            return t + 1;
        }
        let ia = (ratio.ln() / denom).floor() as usize;
        ia.min(t + 1)
    }
}

/// The tunable multipliers behind [`Params`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multipliers {
    /// Stage I phase-0 multiplier: `s = s_mult / ε²`.
    pub s_mult: f64,
    /// Stage I intermediate-phase multiplier: `β = beta_mult / ε²`.
    pub beta_mult: f64,
    /// Stage I final-phase multiplier: `f = f_mult / ε²`.
    pub f_mult: f64,
    /// Stage II sample multiplier: `γ ≈ gamma_mult / ε²`.
    pub gamma_mult: f64,
    /// Additional Stage II doubling phases on top of the derived `k`.
    pub extra_boost_phases: usize,
    /// Final Stage II phase multiplier: `m ≈ final_mult · ln n / ε²`.
    pub final_mult: f64,
}

impl Multipliers {
    /// Calibrated defaults used by [`Params::practical`].
    #[must_use]
    pub fn practical() -> Self {
        Self {
            s_mult: 1.5,
            beta_mult: 5.0,
            f_mult: 3.0,
            gamma_mult: 6.0,
            extra_boost_phases: 3,
            final_mult: 3.0,
        }
    }

    /// The literal constants of the paper's proofs, used by [`Params::paper_strict`].
    #[must_use]
    pub fn paper_strict() -> Self {
        Self {
            // The paper requires f > c1·β > c2·s > c3/ε² for "sufficiently
            // large" constants; these are representative large choices.
            s_mult: 64.0,
            beta_mult: 256.0,
            f_mult: 1024.0,
            // γ = 2r + 1 with r = ⌈2²²/ε²⌉  ⇒  γ_mult = 2²³.
            gamma_mult: (1u64 << 23) as f64,
            extra_boost_phases: 8,
            final_mult: 64.0,
        }
    }

    fn validate(&self) -> Result<(), FlipError> {
        let checks = [
            ("s_mult", self.s_mult),
            ("beta_mult", self.beta_mult),
            ("f_mult", self.f_mult),
            ("gamma_mult", self.gamma_mult),
            ("final_mult", self.final_mult),
        ];
        for (name, value) in checks {
            if !value.is_finite() || value <= 0.0 {
                return Err(FlipError::InvalidParameter {
                    name,
                    message: format!("multiplier must be positive and finite, got {value}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for Multipliers {
    fn default() -> Self {
        Self::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn practical_params_are_valid_for_reasonable_inputs() {
        for &n in &[100usize, 1_000, 10_000] {
            for &eps in &[0.15, 0.25, 0.4] {
                let p = Params::practical(n, eps).unwrap();
                assert!(p.beta_s() > 0);
                assert!(p.beta() >= 2);
                assert!(p.beta_f() > 0);
                assert_eq!(p.gamma() % 2, 1);
                assert_eq!(p.final_samples() % 2, 1);
                assert!(p.total_rounds() == p.stage1_rounds() + p.stage2_rounds());
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Params::practical(4, 0.3).is_err());
        assert!(Params::practical(1_000, 0.0).is_err());
        assert!(Params::practical(1_000, 0.6).is_err());
        assert!(Params::practical(1_000, f64::NAN).is_err());
        // epsilon below 1/sqrt(n) violates the paper's requirement.
        assert!(Params::practical(100, 0.05).is_err());
    }

    #[test]
    fn rejects_non_positive_multipliers() {
        let mut m = Multipliers::practical();
        m.beta_mult = 0.0;
        assert!(Params::with_multipliers(1_000, 0.2, m).is_err());
        let mut m = Multipliers::practical();
        m.gamma_mult = -1.0;
        assert!(Params::with_multipliers(1_000, 0.2, m).is_err());
    }

    #[test]
    fn rounds_scale_with_log_n() {
        let eps = 0.2;
        let small = Params::practical(1_000, eps).unwrap();
        let large = Params::practical(100_000, eps).unwrap();
        let ratio = large.total_rounds() as f64 / small.total_rounds() as f64;
        // ln(100_000)/ln(1_000) ≈ 1.67; allow generous slack for roundings
        // and the k extra doubling phases.
        assert!(ratio > 1.1 && ratio < 3.0, "ratio = {ratio}");
    }

    #[test]
    fn rounds_scale_with_inverse_epsilon_squared() {
        let n = 5_000;
        let coarse = Params::practical(n, 0.4).unwrap();
        let fine = Params::practical(n, 0.1).unwrap();
        let ratio = fine.total_rounds() as f64 / coarse.total_rounds() as f64;
        // (0.4/0.1)^2 = 16; phases that depend only on log n dilute it a little.
        assert!(ratio > 8.0 && ratio < 24.0, "ratio = {ratio}");
    }

    #[test]
    fn intermediate_phase_count_is_zero_for_small_populations() {
        let p = Params::practical(200, 0.3).unwrap();
        // βs already exceeds n/2 for such a small population.
        assert_eq!(p.stage1_intermediate_phases(), 0);
    }

    #[test]
    fn intermediate_phase_count_grows_with_n() {
        let eps = 0.35;
        let small = Params::practical(2_000, eps).unwrap();
        let large = Params::practical(200_000, eps).unwrap();
        assert!(large.stage1_intermediate_phases() >= small.stage1_intermediate_phases());
    }

    #[test]
    fn paper_strict_is_much_larger_than_practical() {
        let practical = Params::practical(1_000, 0.3).unwrap();
        let strict = Params::paper_strict(1_000, 0.3).unwrap();
        assert!(strict.gamma() > 1_000 * practical.gamma());
        assert!(strict.total_rounds() > 100 * practical.total_rounds());
    }

    #[test]
    fn majority_start_phase_is_clamped() {
        let p = Params::practical(10_000, 0.2).unwrap();
        let t = p.stage1_intermediate_phases();
        assert_eq!(p.majority_start_phase(0), 0);
        assert_eq!(p.majority_start_phase(5), 0);
        assert!(p.majority_start_phase(10_000) <= t + 1);
        // Larger initial sets never start earlier than smaller ones.
        assert!(p.majority_start_phase(5_000) >= p.majority_start_phase(50));
    }

    #[test]
    fn theoretical_scale_matches_formula() {
        let p = Params::practical(1_000, 0.25).unwrap();
        let expected = (1_000f64).ln() / (0.25 * 0.25);
        assert!((p.theoretical_round_scale() - expected).abs() < 1e-9);
    }
}
