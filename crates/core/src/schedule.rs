//! Phase schedules: which rounds belong to which phase of which stage.

use crate::params::Params;

/// Which of the two stages a phase belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Stage I — layered spreading of the rumor ("breathe").
    Spreading,
    /// Stage II — repeated majority-sampling boosts ("speak").
    Boosting,
}

/// One phase of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// The stage this phase belongs to.
    pub kind: StageKind,
    /// Zero-based index of the phase within its stage.
    pub index_in_stage: usize,
    /// First round of the phase (in protocol time, before any clock shifting).
    pub start: u64,
    /// Number of rounds in the phase.
    pub len: u64,
    /// For boosting phases: how many samples a successful agent draws at the
    /// end of the phase (always odd).  `None` for spreading phases.
    pub samples: Option<u64>,
}

impl PhaseSpec {
    /// The round just past the end of this phase.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Where a given round falls within a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    /// The round lies inside the phase with the given index (into [`Schedule::phases`]).
    Active {
        /// Index into [`Schedule::phases`].
        phase: usize,
        /// Offset of the round within the phase (`0`-based).
        round_in_phase: u64,
        /// Whether this is the last round of the phase.
        is_last_round: bool,
    },
    /// The round lies in the idle gap before the phase with the given index
    /// (only possible in clock-shifted schedules, paper §3.1).
    Waiting {
        /// Index of the next phase (into [`Schedule::phases`]).
        next_phase: usize,
    },
    /// The round lies after the last phase; the protocol has terminated.
    Done,
}

/// The full phase schedule of a protocol execution.
///
/// A schedule is a contiguous list of [`PhaseSpec`]s: Stage I phases followed
/// by Stage II phases.  [`Schedule::broadcast`] builds the schedule of the
/// noisy broadcast protocol (paper §2); [`Schedule::majority_consensus`]
/// builds the truncated schedule of Corollary 2.18, which enters Stage I at
/// phase `i_A`.
///
/// # Example
///
/// ```
/// use breathe::{Params, Schedule, StageKind};
///
/// let params = Params::practical(1_000, 0.25).unwrap();
/// let schedule = Schedule::broadcast(&params);
/// assert_eq!(schedule.phases()[0].kind, StageKind::Spreading);
/// assert_eq!(schedule.total_rounds(), params.total_rounds());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    phases: Vec<PhaseSpec>,
    spreading_phase_count: usize,
}

impl Schedule {
    /// Builds the schedule of the noisy broadcast protocol (all of Stage I and II).
    #[must_use]
    pub fn broadcast(params: &Params) -> Self {
        let t = params.stage1_intermediate_phases();
        let mut spreading_lens = Vec::with_capacity(t + 2);
        spreading_lens.push(params.beta_s());
        for _ in 0..t {
            spreading_lens.push(params.beta());
        }
        spreading_lens.push(params.beta_f());
        Self::from_lens(params, &spreading_lens)
    }

    /// Builds the schedule of the noisy majority-consensus protocol for an
    /// initial opinionated set of the given size (Corollary 2.18): Stage I is
    /// entered at phase `i_A`, so the earlier (shorter) growth phases are skipped.
    #[must_use]
    pub fn majority_consensus(params: &Params, initial_set: usize) -> Self {
        let t = params.stage1_intermediate_phases();
        let ia = params.majority_start_phase(initial_set);
        let mut spreading_lens = Vec::new();
        for i in ia..=t {
            spreading_lens.push(if i == 0 {
                params.beta_s()
            } else {
                params.beta()
            });
        }
        spreading_lens.push(params.beta_f());
        Self::from_lens(params, &spreading_lens)
    }

    fn from_lens(params: &Params, spreading_lens: &[u64]) -> Self {
        let mut phases = Vec::new();
        let mut start = 0u64;
        for (i, &len) in spreading_lens.iter().enumerate() {
            phases.push(PhaseSpec {
                kind: StageKind::Spreading,
                index_in_stage: i,
                start,
                len,
                samples: None,
            });
            start += len;
        }
        let k = params.boost_phases();
        for i in 0..k {
            phases.push(PhaseSpec {
                kind: StageKind::Boosting,
                index_in_stage: i,
                start,
                len: params.boost_phase_len(),
                samples: Some(params.gamma()),
            });
            start += params.boost_phase_len();
        }
        phases.push(PhaseSpec {
            kind: StageKind::Boosting,
            index_in_stage: k,
            start,
            len: params.final_phase_len(),
            samples: Some(params.final_samples()),
        });
        Self {
            phases,
            spreading_phase_count: spreading_lens.len(),
        }
    }

    /// All phases, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Number of phases (Stage I + Stage II).
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Number of Stage I (spreading) phases.
    #[must_use]
    pub fn spreading_phase_count(&self) -> usize {
        self.spreading_phase_count
    }

    /// Index (into [`Schedule::phases`]) of the last Stage I phase.
    #[must_use]
    pub fn last_spreading_phase(&self) -> usize {
        self.spreading_phase_count - 1
    }

    /// Total rounds of Stage I.
    #[must_use]
    pub fn spreading_rounds(&self) -> u64 {
        self.phases[..self.spreading_phase_count]
            .iter()
            .map(|p| p.len)
            .sum()
    }

    /// Total rounds of the whole protocol (no clock shifting).
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.phases.last().map_or(0, PhaseSpec::end)
    }

    /// Total global rounds needed to complete a clock-shifted execution in
    /// which every phase `i` is delayed by `i·d` on each agent's local clock
    /// and local clocks lag the global clock by at most `d` rounds.
    #[must_use]
    pub fn shifted_total_rounds(&self, d: u64) -> u64 {
        let shift = (self.phases.len() as u64).saturating_sub(1) * d;
        self.total_rounds() + shift + d
    }

    /// Locates `round` in the unshifted (fully-synchronous) schedule.
    #[must_use]
    pub fn position(&self, round: u64) -> Position {
        self.position_with_shift(round, 0)
    }

    /// Locates a *local-clock* time in the clock-shifted schedule of paper
    /// §3.1, where phase `i` occupies local times
    /// `[startᵢ + i·d, startᵢ + i·d + lenᵢ)` and the gaps in between are idle.
    ///
    /// Times falling in the gap before phase `i`'s window are reported as
    /// [`Position::Waiting`]; messages received while waiting are attributed
    /// to the upcoming phase.
    #[must_use]
    pub fn shifted_position(&self, local_time: u64, d: u64) -> Position {
        self.position_with_shift(local_time, d)
    }

    fn position_with_shift(&self, time: u64, d: u64) -> Position {
        // Binary search for the first phase whose shifted window has not ended.
        let mut lo = 0usize;
        let mut hi = self.phases.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let window_end = self.phases[mid].start + mid as u64 * d + self.phases[mid].len;
            if window_end <= time {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let idx = lo;
        if idx >= self.phases.len() {
            return Position::Done;
        }
        let phase = &self.phases[idx];
        let window_start = phase.start + idx as u64 * d;
        if time < window_start {
            Position::Waiting { next_phase: idx }
        } else {
            let round_in_phase = time - window_start;
            Position::Active {
                phase: idx,
                round_in_phase,
                is_last_round: round_in_phase + 1 == phase.len,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::practical(2_000, 0.25).unwrap()
    }

    #[test]
    fn broadcast_schedule_is_contiguous_and_complete() {
        let p = params();
        let schedule = Schedule::broadcast(&p);
        let mut expected_start = 0;
        for phase in schedule.phases() {
            assert_eq!(phase.start, expected_start);
            assert!(phase.len > 0);
            expected_start = phase.end();
        }
        assert_eq!(schedule.total_rounds(), expected_start);
        assert_eq!(schedule.total_rounds(), p.total_rounds());
        assert_eq!(
            schedule.spreading_phase_count(),
            p.stage1_intermediate_phases() + 2
        );
        assert_eq!(schedule.spreading_rounds(), p.stage1_rounds());
    }

    #[test]
    fn boosting_phases_carry_odd_sample_counts() {
        let schedule = Schedule::broadcast(&params());
        for phase in schedule.phases() {
            match phase.kind {
                StageKind::Spreading => assert!(phase.samples.is_none()),
                StageKind::Boosting => {
                    let samples = phase.samples.unwrap();
                    assert_eq!(samples % 2, 1);
                    assert!(2 * samples == phase.len);
                }
            }
        }
    }

    #[test]
    fn position_walks_every_round_exactly_once() {
        let schedule = Schedule::broadcast(&Params::practical(500, 0.3).unwrap());
        let mut last_phase = 0usize;
        for round in 0..schedule.total_rounds() {
            match schedule.position(round) {
                Position::Active {
                    phase,
                    round_in_phase,
                    is_last_round,
                } => {
                    assert!(phase >= last_phase);
                    last_phase = phase;
                    let spec = schedule.phases()[phase];
                    assert_eq!(spec.start + round_in_phase, round);
                    assert_eq!(is_last_round, round + 1 == spec.end());
                }
                other => panic!("round {round} unexpectedly {other:?}"),
            }
        }
        assert_eq!(schedule.position(schedule.total_rounds()), Position::Done);
        assert_eq!(last_phase, schedule.phase_count() - 1);
    }

    #[test]
    fn shifted_position_has_gaps_of_exactly_d() {
        let schedule = Schedule::broadcast(&Params::practical(500, 0.3).unwrap());
        let d = 7;
        let mut active = 0u64;
        let mut waiting = 0u64;
        let horizon = schedule.shifted_total_rounds(d);
        for t in 0..horizon {
            match schedule.shifted_position(t, d) {
                Position::Active { .. } => active += 1,
                Position::Waiting { .. } => waiting += 1,
                Position::Done => {}
            }
        }
        assert_eq!(active, schedule.total_rounds());
        // One gap of length d before every phase except phase 0.
        assert_eq!(waiting, d * (schedule.phase_count() as u64 - 1));
    }

    #[test]
    fn shifted_position_attributes_gap_to_next_phase() {
        let schedule = Schedule::broadcast(&Params::practical(500, 0.3).unwrap());
        let d = 5;
        let first = schedule.phases()[0];
        // Right after phase 0 ends, with a shift the agent waits for phase 1.
        match schedule.shifted_position(first.end(), d) {
            Position::Waiting { next_phase } => assert_eq!(next_phase, 1),
            other => panic!("expected waiting, got {other:?}"),
        }
        match schedule.shifted_position(first.end() + d, d) {
            Position::Active { phase, .. } => assert_eq!(phase, 1),
            other => panic!("expected active in phase 1, got {other:?}"),
        }
    }

    #[test]
    fn zero_shift_matches_plain_position() {
        let schedule = Schedule::broadcast(&Params::practical(300, 0.3).unwrap());
        for round in 0..schedule.total_rounds() {
            assert_eq!(
                schedule.position(round),
                schedule.shifted_position(round, 0)
            );
        }
    }

    #[test]
    fn majority_schedule_skips_early_phases_for_large_sets() {
        let p = Params::practical(50_000, 0.2).unwrap();
        let broadcast = Schedule::broadcast(&p);
        let small_set = Schedule::majority_consensus(&p, 10);
        let large_set = Schedule::majority_consensus(&p, 20_000);
        assert!(small_set.spreading_rounds() <= broadcast.spreading_rounds());
        assert!(large_set.spreading_rounds() <= small_set.spreading_rounds());
        // Stage II is identical in all variants.
        assert_eq!(
            broadcast.total_rounds() - broadcast.spreading_rounds(),
            large_set.total_rounds() - large_set.spreading_rounds()
        );
    }

    #[test]
    fn majority_schedule_always_has_a_final_spreading_phase() {
        let p = Params::practical(1_000, 0.3).unwrap();
        let schedule = Schedule::majority_consensus(&p, 900);
        assert!(schedule.spreading_phase_count() >= 1);
        let last = schedule.phases()[schedule.last_spreading_phase()];
        assert_eq!(last.kind, StageKind::Spreading);
        assert_eq!(last.len, p.beta_f());
    }

    #[test]
    fn shifted_total_rounds_covers_the_last_window() {
        let schedule = Schedule::broadcast(&Params::practical(500, 0.3).unwrap());
        let d = 11;
        let horizon = schedule.shifted_total_rounds(d);
        // At the horizon, every local time <= horizon - d has passed all phases.
        assert_eq!(schedule.shifted_position(horizon - 1, d), Position::Done);
        // Just before the last window ends (local view of the slowest agent),
        // the position is still within the final phase.
        let last_idx = schedule.phase_count() - 1;
        let last = schedule.phases()[last_idx];
        let last_window_end = last.start + last_idx as u64 * d + last.len;
        assert!(matches!(
            schedule.shifted_position(last_window_end - 1, d),
            Position::Active { phase, .. } if phase == last_idx
        ));
    }
}
