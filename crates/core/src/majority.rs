//! The noisy majority-consensus protocol (paper Corollary 2.18).

use std::sync::Arc;

use flip_model::{
    majority_bias, BinarySymmetricChannel, FlipError, Opinion, Simulation, SimulationConfig,
};

use crate::broadcast::BreatheAgent;
use crate::params::Params;
use crate::schedule::Schedule;

/// The initial opinionated set `A` of a majority-consensus instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitialSet {
    /// Members of `A` holding the (majority) correct opinion `B`.
    pub holding_correct: usize,
    /// Members of `A` holding the minority opinion.
    pub holding_wrong: usize,
}

impl InitialSet {
    /// Creates an initial set from its two counts.
    #[must_use]
    pub fn new(holding_correct: usize, holding_wrong: usize) -> Self {
        Self {
            holding_correct,
            holding_wrong,
        }
    }

    /// Builds the smallest-wrong-count set of the given size whose
    /// majority-bias is at least `bias` (paper definition: `(A_B − A_B̄)/2|A|`).
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if `bias` is not in `[0, 1/2]`.
    pub fn with_bias(size: usize, bias: f64) -> Result<Self, FlipError> {
        if !(0.0..=0.5).contains(&bias) || !bias.is_finite() {
            return Err(FlipError::InvalidParameter {
                name: "bias",
                message: format!("majority-bias must lie in [0, 0.5], got {bias}"),
            });
        }
        // bias = (correct - wrong) / (2 size)  with correct + wrong = size
        //  ⇒ correct = size/2 + bias·size.
        let correct = ((size as f64) * (0.5 + bias)).ceil() as usize;
        let correct = correct.min(size);
        Ok(Self {
            holding_correct: correct,
            holding_wrong: size - correct,
        })
    }

    /// Total size `|A|` of the initial set.
    #[must_use]
    pub fn size(&self) -> usize {
        self.holding_correct + self.holding_wrong
    }

    /// The paper's majority-bias of the set.
    #[must_use]
    pub fn majority_bias(&self) -> f64 {
        majority_bias(self.holding_correct, self.holding_wrong)
    }
}

/// The result of one noisy majority-consensus execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MajorityOutcome {
    /// Population size.
    pub n: usize,
    /// Noise margin `ε`.
    pub epsilon: f64,
    /// Size of the initial opinionated set `|A|`.
    pub initial_set_size: usize,
    /// Majority-bias of the initial set.
    pub initial_majority_bias: f64,
    /// Rounds executed.
    pub total_rounds: u64,
    /// Messages (bits) pushed in total.
    pub messages_sent: u64,
    /// Fraction of all agents holding the correct opinion at the end.
    pub fraction_correct: f64,
    /// Whether every agent ended with the correct (initial-majority) opinion.
    pub all_correct: bool,
}

/// Runner for the noisy majority-consensus protocol of Corollary 2.18.
///
/// The initial set `A` enters Stage I at phase `i_A` (larger sets skip more of
/// the early growth phases); the rest of the protocol is identical to
/// broadcast.
///
/// # Example
///
/// ```
/// use breathe::{InitialSet, MajorityConsensusProtocol, Params};
/// use flip_model::Opinion;
///
/// let params = Params::practical(400, 0.3).unwrap();
/// let initial = InitialSet::new(60, 20); // bias 0.25 towards the correct opinion
/// let outcome = MajorityConsensusProtocol::new(params, Opinion::One, initial)
///     .unwrap()
///     .run_with_seed(3)
///     .unwrap();
/// assert!(outcome.fraction_correct > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct MajorityConsensusProtocol {
    params: Params,
    correct: Opinion,
    initial: InitialSet,
    schedule: Arc<Schedule>,
}

impl MajorityConsensusProtocol {
    /// Creates a majority-consensus runner.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if the initial set is empty,
    /// does not fit in the population, or does not have a strict majority for
    /// `correct`.
    pub fn new(params: Params, correct: Opinion, initial: InitialSet) -> Result<Self, FlipError> {
        if initial.size() == 0 {
            return Err(FlipError::InvalidParameter {
                name: "initial_set",
                message: "the initial opinionated set must not be empty".to_string(),
            });
        }
        if initial.size() > params.n() {
            return Err(FlipError::InvalidParameter {
                name: "initial_set",
                message: format!(
                    "initial set of {} agents exceeds the population of {}",
                    initial.size(),
                    params.n()
                ),
            });
        }
        if initial.holding_correct <= initial.holding_wrong {
            return Err(FlipError::InvalidParameter {
                name: "initial_set",
                message: "the correct opinion must hold a strict majority of the initial set"
                    .to_string(),
            });
        }
        let schedule = Arc::new(Schedule::majority_consensus(&params, initial.size()));
        Ok(Self {
            params,
            correct,
            initial,
            schedule,
        })
    }

    /// The parameters of this instance.
    #[must_use]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The phase schedule of this instance.
    #[must_use]
    pub fn schedule(&self) -> &Arc<Schedule> {
        &self.schedule
    }

    /// The initial opinionated set.
    #[must_use]
    pub fn initial_set(&self) -> InitialSet {
        self.initial
    }

    /// Builds the population: the first `|A|` agents are opinionated, the rest dormant.
    ///
    /// Positions carry no meaning in the anonymous push-gossip model, so
    /// placing the opinionated agents first is without loss of generality.
    #[must_use]
    pub fn build_agents(&self) -> Vec<BreatheAgent> {
        let mut agents = Vec::with_capacity(self.params.n());
        for _ in 0..self.initial.holding_correct {
            agents.push(BreatheAgent::informed(self.schedule.clone(), self.correct));
        }
        for _ in 0..self.initial.holding_wrong {
            agents.push(BreatheAgent::informed(
                self.schedule.clone(),
                self.correct.flipped(),
            ));
        }
        for _ in self.initial.size()..self.params.n() {
            agents.push(BreatheAgent::uninformed(self.schedule.clone()));
        }
        agents
    }

    /// Builds the simulation (agents, channel and configuration) for one run.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from channel or engine construction.
    pub fn build_simulation(
        &self,
        seed: u64,
    ) -> Result<Simulation<BreatheAgent, BinarySymmetricChannel>, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.params.epsilon())?;
        let config = SimulationConfig::new(self.params.n())
            .with_seed(seed)
            .with_reference(self.correct);
        Simulation::new(self.build_agents(), channel, config)
    }

    /// Runs one execution.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from channel or engine construction.
    pub fn run_with_seed(&self, seed: u64) -> Result<MajorityOutcome, FlipError> {
        let mut sim = self.build_simulation(seed)?;
        Ok(self.run_simulation(&mut sim))
    }

    /// Runs an already-built simulation (see [`Self::build_simulation`])
    /// through the full schedule.  Splitting construction from execution
    /// lets callers configure the engine first — enable telemetry, say —
    /// without changing the run.
    pub fn run_simulation(
        &self,
        sim: &mut Simulation<BreatheAgent, BinarySymmetricChannel>,
    ) -> MajorityOutcome {
        sim.run(self.schedule.total_rounds());
        let census = sim.census();
        MajorityOutcome {
            n: self.params.n(),
            epsilon: self.params.epsilon(),
            initial_set_size: self.initial.size(),
            initial_majority_bias: self.initial.majority_bias(),
            total_rounds: self.schedule.total_rounds(),
            messages_sent: sim.metrics().messages_sent,
            fraction_correct: census.fraction_correct(self.correct),
            all_correct: census.is_unanimous(self.correct),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_set_bias_constructor_matches_definition() {
        let set = InitialSet::with_bias(100, 0.2).unwrap();
        assert_eq!(set.size(), 100);
        assert!(set.majority_bias() >= 0.2);
        assert!(set.majority_bias() < 0.26);

        let unanimous = InitialSet::with_bias(40, 0.5).unwrap();
        assert_eq!(unanimous.holding_wrong, 0);
        assert!((unanimous.majority_bias() - 0.5).abs() < 1e-12);

        assert!(InitialSet::with_bias(10, 0.7).is_err());
        assert!(InitialSet::with_bias(10, -0.1).is_err());
    }

    #[test]
    fn constructor_validates_the_initial_set() {
        let params = Params::practical(200, 0.3).unwrap();
        assert!(MajorityConsensusProtocol::new(
            params.clone(),
            Opinion::One,
            InitialSet::new(0, 0)
        )
        .is_err());
        assert!(MajorityConsensusProtocol::new(
            params.clone(),
            Opinion::One,
            InitialSet::new(150, 100)
        )
        .is_err());
        assert!(MajorityConsensusProtocol::new(
            params.clone(),
            Opinion::One,
            InitialSet::new(10, 10)
        )
        .is_err());
        assert!(
            MajorityConsensusProtocol::new(params, Opinion::One, InitialSet::new(30, 10)).is_ok()
        );
    }

    #[test]
    fn consensus_reaches_the_initial_majority() {
        let params = Params::practical(300, 0.3).unwrap();
        let initial = InitialSet::new(70, 30);
        let protocol = MajorityConsensusProtocol::new(params, Opinion::Zero, initial).unwrap();
        let outcome = protocol.run_with_seed(4).unwrap();
        assert!(outcome.fraction_correct > 0.9, "outcome = {outcome:?}");
        assert_eq!(outcome.initial_set_size, 100);
        assert!((outcome.initial_majority_bias - 0.2).abs() < 1e-12);
    }

    #[test]
    fn works_when_everyone_starts_opinionated() {
        let params = Params::practical(200, 0.3).unwrap();
        let initial = InitialSet::new(130, 70);
        let protocol = MajorityConsensusProtocol::new(params, Opinion::One, initial).unwrap();
        let outcome = protocol.run_with_seed(8).unwrap();
        assert!(outcome.fraction_correct > 0.9, "outcome = {outcome:?}");
    }

    #[test]
    fn build_agents_places_the_initial_set() {
        let params = Params::practical(100, 0.35).unwrap();
        let initial = InitialSet::new(20, 10);
        let protocol = MajorityConsensusProtocol::new(params, Opinion::One, initial).unwrap();
        let agents = protocol.build_agents();
        use flip_model::Agent;
        let correct = agents
            .iter()
            .filter(|a| a.opinion() == Some(Opinion::One))
            .count();
        let wrong = agents
            .iter()
            .filter(|a| a.opinion() == Some(Opinion::Zero))
            .count();
        assert_eq!(correct, 20);
        assert_eq!(wrong, 10);
        assert_eq!(agents.len(), 100);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let params = Params::practical(150, 0.35).unwrap();
        let initial = InitialSet::new(40, 20);
        let protocol = MajorityConsensusProtocol::new(params, Opinion::One, initial).unwrap();
        assert_eq!(
            protocol.run_with_seed(2).unwrap(),
            protocol.run_with_seed(2).unwrap()
        );
    }
}
