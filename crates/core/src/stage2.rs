//! Stage II — boosting the bias by repeated noisy majority sampling.
//!
//! The rule of Stage II (paper §2.2.2): in every round of every phase each
//! agent pushes its current opinion.  At the end of a phase of `m` rounds, an
//! agent that received at least `m/2` messages ("successful") selects a
//! uniformly random subset of exactly `m/2` of them and adopts the majority
//! opinion of that subset; unsuccessful agents keep their opinion.

use flip_model::{Opinion, SimRng};
use rand::Rng;

/// The Stage II state of a single agent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stage2State {
    opinion: Option<Opinion>,
    zeros_received: u64,
    ones_received: u64,
}

impl Stage2State {
    /// Creates Stage II state with no opinion yet (set one with
    /// [`Stage2State::adopt`] when Stage I hands over).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The agent's current opinion, if any.
    #[must_use]
    pub fn opinion(&self) -> Option<Opinion> {
        self.opinion
    }

    /// Adopts an opinion (used when Stage I hands its initial opinion over,
    /// and in tests).  Adopting `None` leaves the agent opinion-less.
    pub fn adopt(&mut self, opinion: Option<Opinion>) {
        self.opinion = opinion;
    }

    /// Number of messages received so far in the current phase.
    #[must_use]
    pub fn received_in_phase(&self) -> u64 {
        self.zeros_received + self.ones_received
    }

    /// The message to push this round: the current opinion (silent if none).
    #[must_use]
    pub fn send(&self) -> Option<Opinion> {
        self.opinion
    }

    /// Records a message received during the current phase.
    pub fn deliver(&mut self, message: Opinion) {
        match message {
            Opinion::Zero => self.zeros_received += 1,
            Opinion::One => self.ones_received += 1,
        }
    }

    /// Ends a phase of length `phase_len`, drawing `samples` samples if successful.
    ///
    /// Returns `true` if the agent was successful (received at least
    /// `phase_len / 2` messages) and therefore re-evaluated its opinion.
    /// Successful agents draw `samples` of their received messages uniformly
    /// at random *without replacement* and adopt the majority among the drawn
    /// subset; `samples` is odd so ties cannot occur.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `samples` is odd and `samples <= phase_len / 2`,
    /// which the [`Schedule`](crate::Schedule) guarantees by construction.
    pub fn end_phase(&mut self, phase_len: u64, samples: u64, rng: &mut SimRng) -> bool {
        debug_assert_eq!(samples % 2, 1, "sample subsets must be odd-sized");
        debug_assert!(samples <= phase_len / 2 + 1);
        let received = self.received_in_phase();
        let successful = received >= phase_len / 2 && received >= samples;
        if successful {
            let ones_drawn = draw_without_replacement(self.ones_received, received, samples, rng);
            let new_opinion = if 2 * ones_drawn > samples {
                Opinion::One
            } else {
                Opinion::Zero
            };
            self.opinion = Some(new_opinion);
        }
        self.zeros_received = 0;
        self.ones_received = 0;
        successful
    }
}

/// Draws `samples` items without replacement from a population of `total`
/// items of which `successes` are "ones", returning how many ones were drawn
/// (a hypergeometric sample).
fn draw_without_replacement(successes: u64, total: u64, samples: u64, rng: &mut SimRng) -> u64 {
    debug_assert!(successes <= total);
    debug_assert!(samples <= total);
    let mut remaining_ones = successes;
    let mut remaining_total = total;
    let mut drawn_ones = 0;
    for _ in 0..samples {
        // Probability the next drawn item is a one: remaining_ones / remaining_total.
        if remaining_total == 0 {
            break;
        }
        if rng.gen_range(0..remaining_total) < remaining_ones {
            drawn_ones += 1;
            remaining_ones -= 1;
        }
        remaining_total -= 1;
    }
    drawn_ones
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opinionless_agent_is_silent_and_stays_opinionless_when_unsuccessful() {
        let mut state = Stage2State::new();
        let mut rng = SimRng::from_seed(1);
        assert_eq!(state.send(), None);
        // Receives a single message in a 10-round phase: unsuccessful.
        state.deliver(Opinion::One);
        let successful = state.end_phase(10, 5, &mut rng);
        assert!(!successful);
        assert_eq!(state.opinion(), None);
        assert_eq!(state.received_in_phase(), 0, "counters reset at phase end");
    }

    #[test]
    fn adopted_opinion_is_sent() {
        let mut state = Stage2State::new();
        state.adopt(Some(Opinion::Zero));
        assert_eq!(state.send(), Some(Opinion::Zero));
    }

    #[test]
    fn successful_agent_takes_majority_of_unanimous_samples() {
        let mut state = Stage2State::new();
        state.adopt(Some(Opinion::Zero));
        let mut rng = SimRng::from_seed(2);
        for _ in 0..9 {
            state.deliver(Opinion::One);
        }
        let successful = state.end_phase(10, 5, &mut rng);
        assert!(successful);
        assert_eq!(state.opinion(), Some(Opinion::One));
    }

    #[test]
    fn unsuccessful_agent_keeps_its_opinion() {
        let mut state = Stage2State::new();
        state.adopt(Some(Opinion::Zero));
        let mut rng = SimRng::from_seed(3);
        state.deliver(Opinion::One);
        state.deliver(Opinion::One);
        let successful = state.end_phase(10, 5, &mut rng);
        assert!(!successful);
        assert_eq!(state.opinion(), Some(Opinion::Zero));
    }

    #[test]
    fn success_requires_enough_messages_for_the_subset() {
        let mut state = Stage2State::new();
        let mut rng = SimRng::from_seed(4);
        // Phase of length 4 would need only 2 received, but the subset needs 3.
        state.deliver(Opinion::One);
        state.deliver(Opinion::One);
        assert!(!state.end_phase(4, 3, &mut rng));
    }

    #[test]
    fn counters_reset_between_phases() {
        let mut state = Stage2State::new();
        let mut rng = SimRng::from_seed(5);
        for _ in 0..6 {
            state.deliver(Opinion::One);
        }
        assert_eq!(state.received_in_phase(), 6);
        state.end_phase(10, 5, &mut rng);
        assert_eq!(state.received_in_phase(), 0);
        for _ in 0..6 {
            state.deliver(Opinion::Zero);
        }
        state.end_phase(10, 5, &mut rng);
        assert_eq!(state.opinion(), Some(Opinion::Zero));
    }

    #[test]
    fn majority_respects_sample_composition_statistically() {
        // 60% ones in the received pool, sampling 11 of 20: the majority should
        // be ones noticeably more often than zeros.
        let mut one_wins = 0;
        for seed in 0..1_000 {
            let mut state = Stage2State::new();
            let mut rng = SimRng::from_seed(seed);
            for _ in 0..12 {
                state.deliver(Opinion::One);
            }
            for _ in 0..8 {
                state.deliver(Opinion::Zero);
            }
            state.end_phase(22, 11, &mut rng);
            if state.opinion() == Some(Opinion::One) {
                one_wins += 1;
            }
        }
        assert!(one_wins > 700, "one_wins = {one_wins}");
    }

    #[test]
    fn hypergeometric_draw_is_within_bounds_and_roughly_unbiased() {
        let mut rng = SimRng::from_seed(11);
        let mut total_drawn = 0u64;
        let trials = 5_000;
        for _ in 0..trials {
            let drawn = draw_without_replacement(30, 100, 21, &mut rng);
            assert!(drawn <= 21);
            assert!(drawn <= 30);
            total_drawn += drawn;
        }
        let mean = total_drawn as f64 / trials as f64;
        // Expected value is 21 * 30/100 = 6.3.
        assert!((mean - 6.3).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn drawing_the_whole_pool_returns_all_ones() {
        let mut rng = SimRng::from_seed(12);
        assert_eq!(draw_without_replacement(4, 9, 9, &mut rng), 4);
        assert_eq!(draw_without_replacement(0, 9, 9, &mut rng), 0);
        assert_eq!(draw_without_replacement(9, 9, 9, &mut rng), 9);
    }
}
