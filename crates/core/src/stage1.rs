//! Stage I — layered spreading with "breathing" (waiting) before speaking.
//!
//! The rule of Stage I (paper §2.1.2): an agent activated during phase `i`
//! stays silent for the rest of phase `i`, collects the messages it hears in
//! that phase, adopts the content of *one uniformly random* such message as
//! its initial opinion at the end of the phase, and from phase `i + 1` onward
//! pushes that initial opinion in every round until Stage I ends.

use flip_model::{Opinion, SimRng};
use rand::Rng;

/// The Stage I state of a single agent.
///
/// The state machine is deliberately tiny: a level (the phase in which the
/// agent was activated), a reservoir-sampled candidate opinion for the
/// activation phase, and the adopted initial opinion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage1State {
    /// Whether this agent starts the protocol already informed (the broadcast
    /// source, or a member of the initial set `A` in majority consensus).
    initially_informed: bool,
    /// Phase (index into the schedule's spreading phases) in which the agent
    /// was activated; `Some(0)` for initially informed agents.
    level: Option<usize>,
    /// Messages heard during the activation phase.
    heard_in_level_phase: u32,
    /// Reservoir-sampled candidate among those messages.
    reservoir: Option<Opinion>,
    /// The initial opinion adopted at the end of the activation phase.
    initial_opinion: Option<Opinion>,
}

impl Stage1State {
    /// State of an agent that starts with no information (the common case).
    #[must_use]
    pub fn uninformed() -> Self {
        Self {
            initially_informed: false,
            level: None,
            heard_in_level_phase: 0,
            reservoir: None,
            initial_opinion: None,
        }
    }

    /// State of an initially informed agent holding `opinion` (level 0).
    ///
    /// The broadcast source and every member of the initial opinionated set
    /// `A` of the majority-consensus problem are constructed this way.
    #[must_use]
    pub fn informed(opinion: Opinion) -> Self {
        Self {
            initially_informed: true,
            level: Some(0),
            heard_in_level_phase: 0,
            reservoir: None,
            initial_opinion: Some(opinion),
        }
    }

    /// Whether the agent was constructed already informed.
    #[must_use]
    pub fn is_initially_informed(&self) -> bool {
        self.initially_informed
    }

    /// The spreading phase in which this agent was activated, if any.
    #[must_use]
    pub fn level(&self) -> Option<usize> {
        self.level
    }

    /// The initial opinion adopted by the agent, if already set.
    #[must_use]
    pub fn initial_opinion(&self) -> Option<Opinion> {
        self.initial_opinion
    }

    /// Whether the agent has been activated (heard a message or started informed).
    #[must_use]
    pub fn is_activated(&self) -> bool {
        self.level.is_some()
    }

    /// The message to push during spreading phase `phase`, if any.
    ///
    /// Initially informed agents push from the very first phase; an agent
    /// activated in phase `i` pushes from phase `i + 1` on.
    #[must_use]
    pub fn send(&self, phase: usize) -> Option<Opinion> {
        match self.level {
            Some(level) if self.initially_informed || phase > level => self.initial_opinion,
            _ => None,
        }
    }

    /// Handles a message delivered during spreading phase `phase`.
    ///
    /// A dormant agent becomes activated at level `phase`; messages heard
    /// during the activation phase feed the uniform reservoir from which the
    /// initial opinion is drawn at the end of the phase.  Messages heard in
    /// later phases are ignored (the paper's agents never revise their initial
    /// opinion during Stage I).
    pub fn deliver(&mut self, phase: usize, message: Opinion, rng: &mut SimRng) {
        if self.initial_opinion.is_some() || self.initially_informed {
            return;
        }
        match self.level {
            None => {
                self.level = Some(phase);
                self.heard_in_level_phase = 1;
                self.reservoir = Some(message);
            }
            Some(level) if level == phase => {
                self.heard_in_level_phase += 1;
                // Reservoir sampling keeps each heard message with equal probability.
                if rng.gen_range(0..self.heard_in_level_phase) == 0 {
                    self.reservoir = Some(message);
                }
            }
            Some(_) => {
                // Activated in an earlier phase: the initial opinion was already
                // fixed at the end of that phase; later messages are ignored.
            }
        }
    }

    /// Handles the end of spreading phase `phase`: an agent activated in this
    /// phase commits to its reservoir-sampled initial opinion.
    pub fn end_phase(&mut self, phase: usize) {
        if self.initially_informed {
            return;
        }
        if self.level == Some(phase) && self.initial_opinion.is_none() {
            self.initial_opinion = self.reservoir;
        }
    }
}

impl Default for Stage1State {
    fn default() -> Self {
        Self::uninformed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed(7)
    }

    #[test]
    fn uninformed_agent_is_dormant_and_silent() {
        let state = Stage1State::uninformed();
        assert!(!state.is_activated());
        assert_eq!(state.send(0), None);
        assert_eq!(state.send(5), None);
        assert_eq!(state.initial_opinion(), None);
    }

    #[test]
    fn informed_agent_sends_from_phase_zero() {
        let state = Stage1State::informed(Opinion::One);
        assert!(state.is_activated());
        assert_eq!(state.level(), Some(0));
        assert_eq!(state.send(0), Some(Opinion::One));
        assert_eq!(state.send(3), Some(Opinion::One));
    }

    #[test]
    fn informed_agent_never_changes_its_opinion() {
        let mut state = Stage1State::informed(Opinion::One);
        let mut rng = rng();
        state.deliver(0, Opinion::Zero, &mut rng);
        state.end_phase(0);
        assert_eq!(state.initial_opinion(), Some(Opinion::One));
    }

    #[test]
    fn activation_sets_level_and_waits_until_phase_ends() {
        let mut state = Stage1State::uninformed();
        let mut rng = rng();
        state.deliver(2, Opinion::One, &mut rng);
        assert_eq!(state.level(), Some(2));
        // Still silent during its own activation phase and no opinion committed yet.
        assert_eq!(state.send(2), None);
        assert_eq!(state.initial_opinion(), None);
        state.end_phase(2);
        assert_eq!(state.initial_opinion(), Some(Opinion::One));
        // Sends from the next phase on.
        assert_eq!(state.send(3), Some(Opinion::One));
        assert_eq!(state.send(2), None);
    }

    #[test]
    fn single_message_is_adopted_verbatim() {
        for opinion in Opinion::ALL {
            let mut state = Stage1State::uninformed();
            let mut rng = rng();
            state.deliver(1, opinion, &mut rng);
            state.end_phase(1);
            assert_eq!(state.initial_opinion(), Some(opinion));
        }
    }

    #[test]
    fn reservoir_choice_is_roughly_uniform_over_activation_phase_messages() {
        let mut ones = 0;
        for seed in 0..2_000 {
            let mut state = Stage1State::uninformed();
            let mut rng = SimRng::from_seed(seed);
            // Three messages in the activation phase: two zeros, one one.
            state.deliver(0, Opinion::Zero, &mut rng);
            state.deliver(0, Opinion::One, &mut rng);
            state.deliver(0, Opinion::Zero, &mut rng);
            state.end_phase(0);
            if state.initial_opinion() == Some(Opinion::One) {
                ones += 1;
            }
        }
        let fraction = f64::from(ones) / 2_000.0;
        assert!((fraction - 1.0 / 3.0).abs() < 0.05, "fraction = {fraction}");
    }

    #[test]
    fn messages_after_activation_phase_are_ignored() {
        let mut state = Stage1State::uninformed();
        let mut rng = rng();
        state.deliver(1, Opinion::Zero, &mut rng);
        state.end_phase(1);
        for _ in 0..10 {
            state.deliver(2, Opinion::One, &mut rng);
        }
        state.end_phase(2);
        assert_eq!(state.initial_opinion(), Some(Opinion::Zero));
    }

    #[test]
    fn end_of_unrelated_phase_does_not_commit() {
        let mut state = Stage1State::uninformed();
        let mut rng = rng();
        state.deliver(3, Opinion::One, &mut rng);
        state.end_phase(2);
        assert_eq!(state.initial_opinion(), None);
        state.end_phase(3);
        assert_eq!(state.initial_opinion(), Some(Opinion::One));
    }

    #[test]
    fn default_is_uninformed() {
        assert_eq!(Stage1State::default(), Stage1State::uninformed());
    }
}
