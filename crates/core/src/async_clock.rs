//! Removing the global-clock assumption (paper §3).
//!
//! Two agent flavours are provided:
//!
//! * [`OffsetAgent`] — the *modified algorithm* of §3.1: clocks are initialised
//!   to arbitrary values in `[0, D)` and every phase `i` is executed when the
//!   agent's own clock shows `[rᵢ + i·D, rᵢ + i·D + xᵢ)`.  Messages arriving
//!   while an agent idles between its phase windows are attributed to the
//!   upcoming phase (they were necessarily sent by clock-ahead agents already
//!   executing it).
//! * [`ResyncAgent`] — the full §3.2 construction that removes any bound on
//!   clock skew: a preamble in which informed agents push arbitrary bits for
//!   `2·log₂ n` rounds, every agent resets its clock `4·log₂ n` rounds after it
//!   first hears a message, and then the §3.1 algorithm runs with `D = 2·log₂ n`.

use std::sync::Arc;

use flip_model::{
    Agent, BinarySymmetricChannel, ClockModel, FlipError, Opinion, OpinionDelta, Round, SimRng,
    Simulation, SimulationConfig,
};

use crate::agent_core::ProtocolCore;
use crate::params::Params;
use crate::schedule::{Position, Schedule};
use crate::stage1::Stage1State;

/// §3.1 agent: runs the protocol on a clock offset by a known bounded amount.
#[derive(Debug, Clone)]
pub struct OffsetAgent {
    core: ProtocolCore,
    /// This agent's initial clock value, in `[0, D)`.
    offset: u64,
    /// The clock-skew bound `D` used to shift phase windows.
    d: u64,
}

impl OffsetAgent {
    /// Creates an agent whose clock starts at `offset`, running with skew bound `d`.
    #[must_use]
    pub fn new(schedule: Arc<Schedule>, stage1: Stage1State, offset: u64, d: u64) -> Self {
        Self {
            core: ProtocolCore::new(schedule, stage1),
            offset,
            d,
        }
    }

    /// The agent's initial clock offset.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn local_time(&self, round: Round) -> u64 {
        self.offset + round
    }

    fn position(&self, round: Round) -> Position {
        self.core
            .schedule()
            .shifted_position(self.local_time(round), self.d)
    }
}

impl Agent for OffsetAgent {
    fn send(&mut self, round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        match self.position(round) {
            Position::Active { phase, .. } => self.core.send_in_phase(phase),
            Position::Waiting { .. } | Position::Done => None,
        }
    }

    fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng) -> OpinionDelta {
        let before = self.core.opinion();
        match self.position(round) {
            Position::Active { phase, .. } | Position::Waiting { next_phase: phase } => {
                self.core.deliver_in_phase(phase, message, rng);
            }
            Position::Done => {}
        }
        OpinionDelta::between(before, self.core.opinion())
    }

    fn end_round(&mut self, round: Round, rng: &mut SimRng) -> OpinionDelta {
        if let Position::Active {
            phase,
            is_last_round: true,
            ..
        } = self.position(round)
        {
            let before = self.core.opinion();
            self.core.end_phase(phase, rng);
            OpinionDelta::between(before, self.core.opinion())
        } else {
            OpinionDelta::NONE
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        self.core.opinion()
    }
}

/// §3.2 agent: synchronises its clock with an activation preamble, then runs
/// the §3.1 algorithm with `D = 2·log₂ n`.
#[derive(Debug, Clone)]
pub struct ResyncAgent {
    core: ProtocolCore,
    /// Length of the preamble broadcast (`2·log₂ n` rounds).
    preamble_len: u64,
    /// Rounds after first hearing a message at which the clock resets (`4·log₂ n`).
    reset_after: u64,
    /// Skew bound used after the reset (`D = 2·log₂ n`).
    d: u64,
    /// Global round at which this agent first heard a message (or `Some(0)` for
    /// initially informed agents).  Only differences of this value are ever
    /// used, which is what a local round counter would provide.
    heard_first: Option<Round>,
    /// Global round at which this agent's main clock reads zero.
    main_start: Option<Round>,
}

impl ResyncAgent {
    /// Creates a resynchronising agent.
    #[must_use]
    pub fn new(
        schedule: Arc<Schedule>,
        stage1: Stage1State,
        preamble_len: u64,
        reset_after: u64,
        d: u64,
    ) -> Self {
        let informed = stage1.is_initially_informed();
        Self {
            core: ProtocolCore::new(schedule, stage1),
            preamble_len,
            reset_after,
            d,
            heard_first: informed.then_some(0),
            main_start: None,
        }
    }

    /// Whether the agent has entered the main (post-preamble) protocol.
    #[must_use]
    pub fn is_resynchronised(&self) -> bool {
        self.main_start.is_some()
    }

    fn maybe_reset(&mut self, round: Round) {
        if self.main_start.is_none() {
            if let Some(heard) = self.heard_first {
                if round >= heard + self.reset_after {
                    self.main_start = Some(heard + self.reset_after);
                }
            }
        }
    }

    fn main_position(&self, round: Round) -> Option<Position> {
        self.main_start.map(|start| {
            self.core
                .schedule()
                .shifted_position(round.saturating_sub(start), self.d)
        })
    }
}

impl Agent for ResyncAgent {
    fn send(&mut self, round: Round, rng: &mut SimRng) -> Option<Opinion> {
        self.maybe_reset(round);
        if let Some(position) = self.main_position(round) {
            return match position {
                Position::Active { phase, .. } => self.core.send_in_phase(phase),
                Position::Waiting { .. } | Position::Done => None,
            };
        }
        // Preamble: an informed/activated agent pushes an arbitrary (random)
        // bit for `preamble_len` rounds after it was activated.  The content
        // carries no information, so symmetry is preserved.
        match self.heard_first {
            Some(heard) if round < heard + self.preamble_len => Some(Opinion::random(rng)),
            _ => None,
        }
    }

    fn deliver(&mut self, round: Round, message: Opinion, rng: &mut SimRng) -> OpinionDelta {
        let before = self.core.opinion();
        self.maybe_reset(round);
        if let Some(position) = self.main_position(round) {
            match position {
                Position::Active { phase, .. } | Position::Waiting { next_phase: phase } => {
                    self.core.deliver_in_phase(phase, message, rng);
                }
                Position::Done => {}
            }
            return OpinionDelta::between(before, self.core.opinion());
        }
        // Preamble messages only matter for activation (clock start).
        if self.heard_first.is_none() {
            self.heard_first = Some(round);
        }
        OpinionDelta::between(before, self.core.opinion())
    }

    fn end_round(&mut self, round: Round, rng: &mut SimRng) -> OpinionDelta {
        self.maybe_reset(round);
        if let Some(Position::Active {
            phase,
            is_last_round: true,
            ..
        }) = self.main_position(round)
        {
            let before = self.core.opinion();
            self.core.end_phase(phase, rng);
            OpinionDelta::between(before, self.core.opinion())
        } else {
            OpinionDelta::NONE
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        self.core.opinion()
    }
}

/// Which §3 construction to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncVariant {
    /// §3.1: clocks start at arbitrary offsets in `[0, D)` with `D` known.
    BoundedOffsets {
        /// The skew bound `D`.
        max_offset: u64,
    },
    /// §3.2: arbitrary skew removed via the activation/clock-reset preamble.
    Resynchronised,
}

/// The result of one clock-shifted broadcast execution.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncOutcome {
    /// Population size.
    pub n: usize,
    /// Noise margin `ε`.
    pub epsilon: f64,
    /// Rounds executed (global rounds until every agent finished its schedule).
    pub total_rounds: u64,
    /// Rounds the fully-synchronous protocol would have taken.
    pub synchronous_rounds: u64,
    /// Messages (bits) pushed in total.
    pub messages_sent: u64,
    /// Fraction of agents holding the correct opinion at the end.
    pub fraction_correct: f64,
    /// Whether every agent ended with the correct opinion.
    pub all_correct: bool,
}

impl AsyncOutcome {
    /// The additive round overhead relative to the fully-synchronous protocol
    /// (Theorem 3.1 bounds this by `O(log² n)` for the resynchronised variant).
    #[must_use]
    pub fn overhead_rounds(&self) -> u64 {
        self.total_rounds.saturating_sub(self.synchronous_rounds)
    }
}

/// Runner for the noisy broadcast protocol without a global clock (Theorem 3.1).
///
/// # Example
///
/// ```
/// use breathe::{AsyncBroadcastProtocol, AsyncVariant, Params};
/// use flip_model::Opinion;
///
/// let params = Params::practical(300, 0.3).unwrap();
/// let outcome = AsyncBroadcastProtocol::new(
///     params,
///     Opinion::One,
///     AsyncVariant::BoundedOffsets { max_offset: 16 },
/// )
/// .run_with_seed(5)
/// .unwrap();
/// assert!(outcome.fraction_correct > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct AsyncBroadcastProtocol {
    params: Params,
    correct: Opinion,
    variant: AsyncVariant,
    schedule: Arc<Schedule>,
}

impl AsyncBroadcastProtocol {
    /// Creates an asynchronous broadcast runner.
    #[must_use]
    pub fn new(params: Params, correct: Opinion, variant: AsyncVariant) -> Self {
        let schedule = Arc::new(Schedule::broadcast(&params));
        Self {
            params,
            correct,
            variant,
            schedule,
        }
    }

    /// The parameters of this instance.
    #[must_use]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The variant being run.
    #[must_use]
    pub fn variant(&self) -> AsyncVariant {
        self.variant
    }

    /// `⌈log₂ n⌉`, the unit of the §3.2 preamble lengths.
    #[must_use]
    pub fn log2_n(&self) -> u64 {
        (self.params.n() as f64).log2().ceil() as u64
    }

    /// Runs one execution.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from channel or engine construction.
    pub fn run_with_seed(&self, seed: u64) -> Result<AsyncOutcome, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.params.epsilon())?;
        let config = SimulationConfig::new(self.params.n())
            .with_seed(seed)
            .with_reference(self.correct);
        match self.variant {
            AsyncVariant::BoundedOffsets { max_offset } => {
                let d = max_offset.max(1);
                let mut offset_rng = SimRng::from_seed(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
                let clock_model = ClockModel::BoundedOffset { max_offset: d };
                let mut agents = Vec::with_capacity(self.params.n());
                for i in 0..self.params.n() {
                    let stage1 = if i == 0 {
                        Stage1State::informed(self.correct)
                    } else {
                        Stage1State::uninformed()
                    };
                    let offset = clock_model.initial_offset(&mut offset_rng);
                    agents.push(OffsetAgent::new(self.schedule.clone(), stage1, offset, d));
                }
                let total = self.schedule.shifted_total_rounds(d);
                let mut sim = Simulation::new(agents, channel, config)?;
                sim.run(total);
                Ok(self.outcome(total, sim.metrics().messages_sent, &sim.census()))
            }
            AsyncVariant::Resynchronised => {
                let log2n = self.log2_n();
                let d = 2 * log2n;
                let preamble_len = 2 * log2n;
                let reset_after = 4 * log2n;
                let mut agents = Vec::with_capacity(self.params.n());
                for i in 0..self.params.n() {
                    let stage1 = if i == 0 {
                        Stage1State::informed(self.correct)
                    } else {
                        Stage1State::uninformed()
                    };
                    agents.push(ResyncAgent::new(
                        self.schedule.clone(),
                        stage1,
                        preamble_len,
                        reset_after,
                        d,
                    ));
                }
                // Horizon: the slowest agent resets at most `reset_after + preamble
                // spreading time` rounds in; add slack for the shifted schedule.
                let total = 2 * reset_after + self.schedule.shifted_total_rounds(d);
                let mut sim = Simulation::new(agents, channel, config)?;
                sim.run(total);
                Ok(self.outcome(total, sim.metrics().messages_sent, &sim.census()))
            }
        }
    }

    fn outcome(
        &self,
        total_rounds: u64,
        messages_sent: u64,
        census: &flip_model::Census,
    ) -> AsyncOutcome {
        AsyncOutcome {
            n: self.params.n(),
            epsilon: self.params.epsilon(),
            total_rounds,
            synchronous_rounds: self.schedule.total_rounds(),
            messages_sent,
            fraction_correct: census.fraction_correct(self.correct),
            all_correct: census.is_unanimous(self.correct),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_agent_with_zero_offset_matches_synchronous_positions() {
        let params = Params::practical(200, 0.35).unwrap();
        let schedule = Arc::new(Schedule::broadcast(&params));
        let agent = OffsetAgent::new(schedule.clone(), Stage1State::uninformed(), 0, 0);
        assert_eq!(agent.offset(), 0);
        assert_eq!(
            schedule.shifted_position(0, 0),
            schedule.position(0),
            "zero shift must coincide"
        );
    }

    #[test]
    fn bounded_offsets_variant_reaches_consensus() {
        let params = Params::practical(300, 0.3).unwrap();
        let protocol = AsyncBroadcastProtocol::new(
            params,
            Opinion::One,
            AsyncVariant::BoundedOffsets { max_offset: 20 },
        );
        let outcome = protocol.run_with_seed(6).unwrap();
        assert!(outcome.fraction_correct > 0.9, "outcome = {outcome:?}");
        assert!(outcome.total_rounds > outcome.synchronous_rounds);
    }

    #[test]
    fn resynchronised_variant_reaches_consensus() {
        let params = Params::practical(300, 0.3).unwrap();
        let protocol =
            AsyncBroadcastProtocol::new(params, Opinion::Zero, AsyncVariant::Resynchronised);
        let outcome = protocol.run_with_seed(7).unwrap();
        assert!(outcome.fraction_correct > 0.9, "outcome = {outcome:?}");
        let overhead = outcome.overhead_rounds();
        // Theorem 3.1: the overhead is an additive O(log² n); with n = 300 and
        // our explicit horizon it stays far below the synchronous runtime
        // multiplied by a constant.
        assert!(overhead > 0);
    }

    #[test]
    fn overhead_is_reported_consistently() {
        let outcome = AsyncOutcome {
            n: 10,
            epsilon: 0.3,
            total_rounds: 120,
            synchronous_rounds: 100,
            messages_sent: 0,
            fraction_correct: 1.0,
            all_correct: true,
        };
        assert_eq!(outcome.overhead_rounds(), 20);
    }

    #[test]
    fn resync_agent_resets_its_clock_after_the_prescribed_delay() {
        let params = Params::practical(64, 0.4).unwrap();
        let schedule = Arc::new(Schedule::broadcast(&params));
        let mut agent = ResyncAgent::new(schedule, Stage1State::informed(Opinion::One), 4, 8, 4);
        let mut rng = SimRng::from_seed(1);
        assert!(!agent.is_resynchronised());
        for round in 0..8 {
            let _ = agent.send(round, &mut rng);
            let _ = agent.end_round(round, &mut rng);
        }
        assert!(!agent.is_resynchronised());
        let _ = agent.send(8, &mut rng);
        assert!(agent.is_resynchronised());
    }

    #[test]
    fn dormant_resync_agent_starts_counting_when_first_hearing_a_message() {
        let params = Params::practical(64, 0.4).unwrap();
        let schedule = Arc::new(Schedule::broadcast(&params));
        let mut agent = ResyncAgent::new(schedule, Stage1State::uninformed(), 4, 8, 4);
        let mut rng = SimRng::from_seed(2);
        // Silent while dormant.
        assert_eq!(agent.send(0, &mut rng), None);
        let _ = agent.deliver(3, Opinion::One, &mut rng);
        // During its preamble window it broadcasts arbitrary bits.
        assert!(agent.send(4, &mut rng).is_some());
        // After the preamble window but before reset it is silent again.
        assert_eq!(agent.send(3 + 5, &mut rng), None);
        // After `reset_after` rounds it has resynchronised.
        let _ = agent.send(3 + 8, &mut rng);
        assert!(agent.is_resynchronised());
    }
}
