//! Gossip adaptations of classic binary Byzantine-consensus protocols, used
//! as comparators for the E13 fault-tolerance experiment family.
//!
//! The Flip model gives every agent one pushed bit per round to a uniformly
//! random peer and at most one accepted bit back — there is no all-to-all
//! broadcast and no sender identity, so the quorum protocols of the BFT
//! literature cannot run verbatim.  The agents here keep each protocol's
//! *decision structure* (phases, supermajority thresholds, common/local
//! coins) but replace "count distinct senders" with "tally the bits accepted
//! during a phase of `L` rounds".  Because a recipient accepts at most one
//! bit per round and stays empty with probability `≈ 1/e`, a phase yields a
//! *random* `≈ 0.63·L` samples; the classic `n − f` / `2f + 1` / `f + 1`
//! quorums therefore become **fractions of the phase tally `t`** (`⌈2t/3⌉`
//! supermajority, `⌈t/3⌉` echo) guarded by a minimum quorum of `⌈L/2⌉`
//! accepted samples — a phase with fewer samples is inconclusive, the gossip
//! stand-in for "wait for `n − f` messages before acting".
//!
//! * [`MajorityBoostAgent`] — the paper's Stage-II style repeated noisy
//!   majority: the *non-BFT* baseline the comparison is anchored on.
//! * [`BenOrAgent`] — Ben-Or's randomized consensus: supermajority decides,
//!   majority adopts, a tie flips a local coin.
//! * [`BvBroadcastAgent`] — the BV-broadcast primitive: echo a value carrying
//!   a third of the tally, deliver it into `bin_values` at two thirds.
//! * [`SafeBbcAgent`] — the safe binary Byzantine consensus loop: BV-style
//!   EST phases alternating with AUX phases whose singleton support is
//!   matched against a rotating common coin.
//!
//! Unlike their quorum-certified ancestors, the tally adaptations offer
//! *statistical* rather than absolute agreement — a sufficiently unlucky
//! tally can still decide against a large majority.  That gap is exactly
//! what E13 measures when it runs these protocols against the paper's
//! majority dynamics under identical noise and fault injection.
//!
//! All four are deterministic functions of the engine's [`SimRng`] stream,
//! so they inherit the engine's thread-count invariance and compose with the
//! fault-injection layer (`flip_model::faults`) without extra plumbing.

use flip_model::{Agent, Opinion, OpinionDelta, Round, SimRng};

/// Splits a population: the first `correct` agents hold [`Opinion::One`]
/// (the reference opinion), the rest hold [`Opinion::Zero`].
fn seeded<T>(n: usize, correct: usize, make: impl Fn(Opinion) -> T) -> Vec<T> {
    assert!(correct <= n, "correct = {correct} exceeds n = {n}");
    (0..n)
        .map(|i| {
            make(if i < correct {
                Opinion::One
            } else {
                Opinion::Zero
            })
        })
        .collect()
}

/// The minimum phase tally (`⌈L/2⌉`) below which a phase is inconclusive.
fn quorum(phase_len: u64) -> u32 {
    phase_len.div_ceil(2) as u32
}

/// The Stage-II style repeated noisy majority boost: every round push the
/// current opinion, every `phase_len` rounds re-set it to the majority of the
/// bits accepted during the phase (ties keep the current opinion).
///
/// This is the paper's own amplification dynamic run standalone — E13 uses
/// it as the non-BFT baseline that Ben-Or is compared against under
/// identical noise and fault injection.
#[derive(Debug, Clone)]
pub struct MajorityBoostAgent {
    opinion: Opinion,
    phase_len: u64,
    ones: u32,
    total: u32,
}

impl MajorityBoostAgent {
    /// An agent starting from `opinion`, deciding every `phase_len` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` is zero.
    #[must_use]
    pub fn new(opinion: Opinion, phase_len: u64) -> Self {
        assert!(phase_len > 0, "phase_len must be >= 1");
        Self {
            opinion,
            phase_len,
            ones: 0,
            total: 0,
        }
    }

    /// A population of `n` agents, the first `correct` holding [`Opinion::One`].
    #[must_use]
    pub fn population(n: usize, correct: usize, phase_len: u64) -> Vec<Self> {
        seeded(n, correct, |opinion| Self::new(opinion, phase_len))
    }
}

impl Agent for MajorityBoostAgent {
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        Some(self.opinion)
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        self.ones += u32::from(message.as_bit());
        self.total += 1;
        OpinionDelta::NONE
    }

    fn end_round(&mut self, round: Round, _rng: &mut SimRng) -> OpinionDelta {
        if !(round + 1).is_multiple_of(self.phase_len) {
            return OpinionDelta::NONE;
        }
        let before = self.opinion;
        let zeros = self.total - self.ones;
        if self.ones > zeros {
            self.opinion = Opinion::One;
        } else if zeros > self.ones {
            self.opinion = Opinion::Zero;
        }
        self.ones = 0;
        self.total = 0;
        OpinionDelta::between(Some(before), Some(self.opinion))
    }

    fn opinion(&self) -> Option<Opinion> {
        Some(self.opinion)
    }
}

/// Ben-Or's randomized binary consensus, phase-tally adaptation.
///
/// Each phase of `phase_len` rounds the agent pushes its current estimate
/// and tallies accepted bits.  At phase end, provided the tally `t` reaches
/// the `⌈phase_len/2⌉` quorum:
///
/// * a `≥ ⌈2t/3⌉` supermajority for a value **decides** it (irrevocably),
/// * otherwise a strict majority adopts the value as the next estimate,
/// * a tie re-randomizes the estimate with a local coin.
///
/// Below the quorum the phase is inconclusive: the majority/tie step still
/// runs (so sparse phases keep mixing) but no decision is taken.  Decided
/// agents keep pushing their decision forever, which is what lets an
/// early-deciding cohort drag the rest of the population along.
#[derive(Debug, Clone)]
pub struct BenOrAgent {
    estimate: Opinion,
    decided: Option<Opinion>,
    phase_len: u64,
    ones: u32,
    total: u32,
}

impl BenOrAgent {
    /// An agent starting from `estimate`, with phases of `phase_len` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` is zero.
    #[must_use]
    pub fn new(estimate: Opinion, phase_len: u64) -> Self {
        assert!(phase_len > 0, "phase_len must be >= 1");
        Self {
            estimate,
            decided: None,
            phase_len,
            ones: 0,
            total: 0,
        }
    }

    /// A population of `n` agents, the first `correct` holding [`Opinion::One`].
    #[must_use]
    pub fn population(n: usize, correct: usize, phase_len: u64) -> Vec<Self> {
        seeded(n, correct, |opinion| Self::new(opinion, phase_len))
    }

    /// The decided value, if this agent has decided.
    #[must_use]
    pub fn decided(&self) -> Option<Opinion> {
        self.decided
    }
}

impl Agent for BenOrAgent {
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        Some(self.decided.unwrap_or(self.estimate))
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        self.ones += u32::from(message.as_bit());
        self.total += 1;
        OpinionDelta::NONE
    }

    fn end_round(&mut self, round: Round, rng: &mut SimRng) -> OpinionDelta {
        if !(round + 1).is_multiple_of(self.phase_len) {
            return OpinionDelta::NONE;
        }
        let (ones, total) = (self.ones, self.total);
        self.ones = 0;
        self.total = 0;
        if self.decided.is_some() {
            return OpinionDelta::NONE;
        }
        let before = self.estimate;
        let zeros = total - ones;
        let conclusive = total >= quorum(self.phase_len);
        if conclusive && 3 * ones >= 2 * total && ones > zeros {
            self.decided = Some(Opinion::One);
            self.estimate = Opinion::One;
        } else if conclusive && 3 * zeros >= 2 * total && zeros > ones {
            self.decided = Some(Opinion::Zero);
            self.estimate = Opinion::Zero;
        } else if ones > zeros {
            self.estimate = Opinion::One;
        } else if zeros > ones {
            self.estimate = Opinion::Zero;
        } else {
            self.estimate = Opinion::random(rng);
        }
        OpinionDelta::between(Some(before), Some(self.estimate))
    }

    fn opinion(&self) -> Option<Opinion> {
        Some(self.decided.unwrap_or(self.estimate))
    }

    fn is_done(&self) -> bool {
        self.decided.is_some()
    }
}

/// The BV-broadcast primitive, phase-tally adaptation.
///
/// The classic primitive echoes a value once `f + 1` distinct senders
/// vouched for it and delivers it into `bin_values` at `2f + 1`.  Over
/// anonymous gossip the per-phase tally `t` stands in for the sender count:
/// in any conclusive phase (tally `≥ ⌈L/2⌉`) a value carrying `⌈t/3⌉` of
/// the tally joins the broadcast set (the echo), and at `⌈2t/3⌉` it is
/// delivered into `bin_values`.  Agents pushing two values alternate them
/// by round parity.
///
/// The agent's reported opinion is the first value it delivered (its
/// initial estimate until then), so a census over a BV-broadcast population
/// reads off which values achieved delivery.
#[derive(Debug, Clone)]
pub struct BvBroadcastAgent {
    estimate: Opinion,
    broadcasting: [bool; 2],
    bin_values: [bool; 2],
    delivered: Option<Opinion>,
    counts: [u32; 2],
    phase_len: u64,
}

impl BvBroadcastAgent {
    /// An agent initially broadcasting `estimate`, with phases of
    /// `phase_len` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` is zero.
    #[must_use]
    pub fn new(estimate: Opinion, phase_len: u64) -> Self {
        assert!(phase_len > 0, "phase_len must be >= 1");
        let mut broadcasting = [false; 2];
        broadcasting[estimate.index()] = true;
        Self {
            estimate,
            broadcasting,
            bin_values: [false; 2],
            delivered: None,
            counts: [0; 2],
            phase_len,
        }
    }

    /// A population of `n` agents, the first `correct` holding [`Opinion::One`].
    #[must_use]
    pub fn population(n: usize, correct: usize, phase_len: u64) -> Vec<Self> {
        seeded(n, correct, |opinion| Self::new(opinion, phase_len))
    }

    /// Whether `value` has been delivered into this agent's `bin_values`.
    #[must_use]
    pub fn bin_value(&self, value: Opinion) -> bool {
        self.bin_values[value.index()]
    }

    /// Whether this agent is (re-)broadcasting `value`.
    #[must_use]
    pub fn is_broadcasting(&self, value: Opinion) -> bool {
        self.broadcasting[value.index()]
    }
}

impl Agent for BvBroadcastAgent {
    fn send(&mut self, round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        match self.broadcasting {
            [true, true] => Some(Opinion::from_bit((round & 1) as u8)),
            [true, false] => Some(Opinion::Zero),
            [false, true] => Some(Opinion::One),
            [false, false] => None,
        }
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        self.counts[message.index()] += 1;
        OpinionDelta::NONE
    }

    fn end_round(&mut self, round: Round, _rng: &mut SimRng) -> OpinionDelta {
        if !(round + 1).is_multiple_of(self.phase_len) {
            return OpinionDelta::NONE;
        }
        let counts = self.counts;
        self.counts = [0; 2];
        let total = counts[0] + counts[1];
        if total < quorum(self.phase_len) {
            return OpinionDelta::NONE;
        }
        let before = self.opinion();
        for value in Opinion::ALL {
            let count = counts[value.index()];
            if 3 * count >= total {
                self.broadcasting[value.index()] = true;
            }
            if 3 * count >= 2 * total && count > 0 {
                self.bin_values[value.index()] = true;
                if self.delivered.is_none() {
                    self.delivered = Some(value);
                }
            }
        }
        OpinionDelta::between(before, self.opinion())
    }

    fn opinion(&self) -> Option<Opinion> {
        Some(self.delivered.unwrap_or(self.estimate))
    }
}

/// Safe binary Byzantine consensus, phase-tally adaptation.
///
/// Alternates two phase kinds, each `phase_len` rounds long:
///
/// * **EST** (even phases): push the current estimate; at a conclusive
///   phase end (tally `t ≥ ⌈L/2⌉`) a value carrying `⌈2t/3⌉` of the tally
///   enters `bin_values` — if none qualifies the phase majority does, so
///   noise cannot stall the loop.
/// * **AUX** (odd phases): push a `bin_values` witness (preferring the
///   estimate); at phase end the values carrying `⌈t/3⌉` of a conclusive
///   tally that are also in `bin_values` form the support set.  A singleton
///   support `{v}` matching the iteration's rotating common coin
///   **decides** `v`; a singleton not matching adopts `v`; anything else
///   adopts the coin.
///
/// The rotating coin (`iteration mod 2`) is the standard derandomized
/// stand-in for a common coin — every agent computes the same value from
/// the global round counter, which the synchronous Flip engine provides.
#[derive(Debug, Clone)]
pub struct SafeBbcAgent {
    estimate: Opinion,
    decided: Option<Opinion>,
    bin_values: [bool; 2],
    counts: [u32; 2],
    phase_len: u64,
}

impl SafeBbcAgent {
    /// An agent starting from `estimate`, with phases of `phase_len` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` is zero.
    #[must_use]
    pub fn new(estimate: Opinion, phase_len: u64) -> Self {
        assert!(phase_len > 0, "phase_len must be >= 1");
        Self {
            estimate,
            decided: None,
            bin_values: [false; 2],
            counts: [0; 2],
            phase_len,
        }
    }

    /// A population of `n` agents, the first `correct` holding [`Opinion::One`].
    #[must_use]
    pub fn population(n: usize, correct: usize, phase_len: u64) -> Vec<Self> {
        seeded(n, correct, |opinion| Self::new(opinion, phase_len))
    }

    /// The decided value, if this agent has decided.
    #[must_use]
    pub fn decided(&self) -> Option<Opinion> {
        self.decided
    }

    /// Phase index of `round` (0-based; even = EST, odd = AUX).
    fn phase(&self, round: Round) -> u64 {
        round / self.phase_len
    }

    /// The rotating common coin for the EST/AUX iteration containing `phase`.
    fn coin(phase: u64) -> Opinion {
        Opinion::from_bit(((phase / 2) & 1) as u8)
    }
}

impl Agent for SafeBbcAgent {
    fn send(&mut self, round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        if let Some(value) = self.decided {
            return Some(value);
        }
        if self.phase(round).is_multiple_of(2) {
            return Some(self.estimate);
        }
        // AUX phase: witness a bin value, preferring the own estimate.
        if self.bin_values[self.estimate.index()] {
            Some(self.estimate)
        } else if self.bin_values[self.estimate.flipped().index()] {
            Some(self.estimate.flipped())
        } else {
            None
        }
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        self.counts[message.index()] += 1;
        OpinionDelta::NONE
    }

    fn end_round(&mut self, round: Round, _rng: &mut SimRng) -> OpinionDelta {
        if !(round + 1).is_multiple_of(self.phase_len) {
            return OpinionDelta::NONE;
        }
        let phase = self.phase(round);
        let counts = self.counts;
        self.counts = [0; 2];
        if self.decided.is_some() {
            return OpinionDelta::NONE;
        }
        let total = counts[0] + counts[1];
        let conclusive = total >= quorum(self.phase_len);
        let before = self.estimate;
        if phase.is_multiple_of(2) {
            // EST phase end: supermajority delivery into bin_values, with
            // the phase majority as the noise-proof fallback.
            self.bin_values = [false; 2];
            if conclusive {
                for value in Opinion::ALL {
                    if 3 * counts[value.index()] >= 2 * total && counts[value.index()] > 0 {
                        self.bin_values[value.index()] = true;
                    }
                }
            }
            if self.bin_values == [false; 2] {
                let majority = if counts[1] >= counts[0] {
                    Opinion::One
                } else {
                    Opinion::Zero
                };
                self.bin_values[majority.index()] = true;
            }
        } else {
            // AUX phase end: singleton supported value vs the common coin.
            let supported: Vec<Opinion> = Opinion::ALL
                .into_iter()
                .filter(|v| {
                    conclusive && self.bin_values[v.index()] && 3 * counts[v.index()] >= total
                })
                .collect();
            let coin = Self::coin(phase);
            match supported.as_slice() {
                [value] if *value == coin => {
                    self.decided = Some(*value);
                    self.estimate = *value;
                }
                [value] => self.estimate = *value,
                _ => self.estimate = coin,
            }
        }
        OpinionDelta::between(Some(before), Some(self.estimate))
    }

    fn opinion(&self) -> Option<Opinion> {
        Some(self.decided.unwrap_or(self.estimate))
    }

    fn is_done(&self) -> bool {
        self.decided.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flip_model::{BinarySymmetricChannel, NoiselessChannel, Simulation, SimulationConfig};

    fn config(n: usize, seed: u64) -> SimulationConfig {
        SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
    }

    #[test]
    fn majority_boost_amplifies_a_bias_under_noise() {
        let n = 2_000;
        let agents = MajorityBoostAgent::population(n, 1_200, 15);
        let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
        let mut sim = Simulation::new(agents, channel, config(n, 9)).unwrap();
        sim.run(120);
        let fraction = sim.census().fraction_correct(Opinion::One);
        assert!(fraction > 0.9, "60% bias should amplify, got {fraction}");
    }

    #[test]
    fn ben_or_decides_overwhelmingly_with_a_clear_majority() {
        let n = 600;
        let agents = BenOrAgent::population(n, 480, 15);
        let channel = BinarySymmetricChannel::from_epsilon(0.4).unwrap();
        let mut sim = Simulation::new(agents, channel, config(n, 4)).unwrap();
        sim.run(300);
        let decided_one = sim
            .agents()
            .iter()
            .filter(|a| a.decided() == Some(Opinion::One))
            .count();
        let decided = sim.agents().iter().filter(|a| a.is_done()).count();
        assert!(
            decided > n / 2,
            "most agents should decide within 20 phases, got {decided}"
        );
        // The tally adaptation gives statistical (not absolute) agreement:
        // wrong decisions must stay rare outliers.
        assert!(
            decided_one * 100 >= decided * 95,
            "an 80% majority must dominate decisions: {decided_one}/{decided}"
        );
    }

    #[test]
    fn ben_or_ties_rerandomize_instead_of_stalling() {
        // A dead-even split with no noise: tallies keep tying, so agents
        // must keep flipping local coins rather than freeze, and everyone
        // eventually decides.  (The decisions themselves may split — with
        // per-agent tallies standing in for global quorums, a perfect tie
        // is exactly where the adaptation's statistical-agreement gap
        // shows; E13 quantifies that gap against the majority dynamics.)
        let n = 100;
        let agents = BenOrAgent::population(n, 50, 9);
        let mut sim = Simulation::new(agents, NoiselessChannel, config(n, 21)).unwrap();
        let rounds = sim.run_until(20_000, |s| s.agents().iter().all(|a| a.is_done()));
        assert!(rounds < 20_000, "every agent must decide eventually");
        assert!(sim.agents().iter().all(|a| a.is_done()));
    }

    #[test]
    fn bv_broadcast_delivers_a_unanimous_value() {
        let n = 400;
        let agents = BvBroadcastAgent::population(n, n, 12);
        let mut sim = Simulation::new(agents, NoiselessChannel, config(n, 3)).unwrap();
        sim.run(96);
        let delivered = sim
            .agents()
            .iter()
            .filter(|a| a.bin_value(Opinion::One))
            .count();
        assert!(
            delivered * 100 >= n * 95,
            "a unanimous One must reach almost every bin_values, got {delivered}/{n}"
        );
        assert!(
            sim.agents().iter().all(|a| !a.bin_value(Opinion::Zero)),
            "Zero was never proposed and must not be delivered"
        );
    }

    #[test]
    fn bv_broadcast_echoes_a_minority_value_it_heard_often_enough() {
        // With a 50/50 split both values clear the third-of-tally echo
        // threshold, so agents end up re-broadcasting both (alternating by
        // round parity) even though neither reaches delivery.
        let n = 400;
        let agents = BvBroadcastAgent::population(n, 200, 12);
        let mut sim = Simulation::new(agents, NoiselessChannel, config(n, 5)).unwrap();
        sim.run(48);
        let echoing_both = sim
            .agents()
            .iter()
            .filter(|a| a.is_broadcasting(Opinion::Zero) && a.is_broadcasting(Opinion::One))
            .count();
        assert!(
            echoing_both > n / 2,
            "an even split should echo both values widely, got {echoing_both}/{n}"
        );
    }

    #[test]
    fn safe_bbc_decides_the_majority_value() {
        let n = 600;
        let agents = SafeBbcAgent::population(n, 480, 15);
        let channel = BinarySymmetricChannel::from_epsilon(0.4).unwrap();
        let mut sim = Simulation::new(agents, channel, config(n, 8)).unwrap();
        sim.run(600);
        let decided_one = sim
            .agents()
            .iter()
            .filter(|a| a.decided() == Some(Opinion::One))
            .count();
        let decided = sim.agents().iter().filter(|a| a.is_done()).count();
        assert!(decided > n / 2, "most agents should decide, got {decided}");
        assert!(
            decided_one * 100 >= decided * 95,
            "an 80% majority must dominate decisions: {decided_one}/{decided}"
        );
    }

    #[test]
    fn phase_tally_agents_are_seed_deterministic() {
        let n = 300;
        let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
        let run = |seed: u64| {
            let mut sim =
                Simulation::new(BenOrAgent::population(n, 200, 9), channel, config(n, seed))
                    .unwrap();
            sim.run(90);
            (sim.census(), sim.metrics().clone())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn zero_phase_lengths_are_rejected() {
        for result in [
            std::panic::catch_unwind(|| MajorityBoostAgent::new(Opinion::One, 0)).map(|_| ()),
            std::panic::catch_unwind(|| BenOrAgent::new(Opinion::One, 0)).map(|_| ()),
            std::panic::catch_unwind(|| BvBroadcastAgent::new(Opinion::One, 0)).map(|_| ()),
            std::panic::catch_unwind(|| SafeBbcAgent::new(Opinion::One, 0)).map(|_| ()),
        ] {
            assert!(result.is_err(), "phase_len = 0 must panic");
        }
    }
}
