//! The noisy voter model with a zealot source (paper §1.2, references [49, 50]).
//!
//! Every opinionated agent pushes its opinion each round and every agent that
//! accepts a message adopts it verbatim (after channel noise); a single
//! *zealot* — the source — never changes its opinion.  Physicists study this
//! dynamics as a model of opinion spreading; the paper points out that its
//! convergence time around a zealot is polynomial in `n`, and with channel
//! noise the stationary distribution stays close to a fair coin regardless of
//! the zealot.  This baseline quantifies both effects.

use flip_model::{
    Agent, BinarySymmetricChannel, FlipError, Opinion, OpinionDelta, Round, SimRng, Simulation,
    SimulationConfig,
};

use crate::BaselineOutcome;

/// A voter-model agent (the zealot never updates).
#[derive(Debug, Clone, Default)]
struct VoterAgent {
    opinion: Option<Opinion>,
    is_zealot: bool,
}

impl Agent for VoterAgent {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        self.opinion
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        if self.is_zealot {
            return OpinionDelta::NONE;
        }
        let before = self.opinion;
        self.opinion = Some(message);
        OpinionDelta::between(before, self.opinion)
    }

    fn opinion(&self) -> Option<Opinion> {
        self.opinion
    }
}

/// Runner for the noisy voter model with one zealot.
///
/// # Example
///
/// ```
/// use baselines::NoisyVoterProtocol;
/// use flip_model::Opinion;
///
/// let protocol = NoisyVoterProtocol::new(300, 0.2, 500).unwrap();
/// let outcome = protocol.run_with_seed(Opinion::One, 7).unwrap();
/// // The noisy voter model hovers near a fair coin; it does not reach consensus.
/// assert!(!outcome.all_correct);
/// ```
#[derive(Debug, Clone)]
pub struct NoisyVoterProtocol {
    n: usize,
    epsilon: f64,
    rounds: u64,
}

impl NoisyVoterProtocol {
    /// Creates a runner over `n` agents with noise margin `ε`, running for `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError`] if `n < 2` or `ε ∉ (0, 1/2]`.
    pub fn new(n: usize, epsilon: f64, rounds: u64) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        BinarySymmetricChannel::from_epsilon(epsilon)?;
        Ok(Self { n, epsilon, rounds })
    }

    /// Runs one execution in which the zealot holds `correct`.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from engine construction.
    pub fn run_with_seed(&self, correct: Opinion, seed: u64) -> Result<BaselineOutcome, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.epsilon)?;
        let mut agents = vec![VoterAgent::default(); self.n];
        agents[0] = VoterAgent {
            opinion: Some(correct),
            is_zealot: true,
        };
        let config = SimulationConfig::new(self.n)
            .with_seed(seed)
            .with_reference(correct);
        let mut sim = Simulation::new(agents, channel, config)?;
        sim.run(self.rounds);
        let census = sim.census();
        Ok(BaselineOutcome {
            n: self.n,
            epsilon: self.epsilon,
            correct,
            rounds: self.rounds,
            messages_sent: sim.metrics().messages_sent,
            fraction_correct: census.fraction_correct(correct),
            all_correct: census.is_unanimous(correct),
        })
    }

    /// Runs one execution and returns the per-round fraction of correct agents.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from engine construction.
    pub fn run_trajectory(&self, correct: Opinion, seed: u64) -> Result<Vec<f64>, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.epsilon)?;
        let mut agents = vec![VoterAgent::default(); self.n];
        agents[0] = VoterAgent {
            opinion: Some(correct),
            is_zealot: true,
        };
        let config = SimulationConfig::new(self.n)
            .with_seed(seed)
            .with_reference(correct)
            .with_history(true);
        let mut sim = Simulation::new(agents, channel, config)?;
        sim.run(self.rounds);
        Ok(sim
            .trace()
            .history()
            .iter()
            .map(|s| s.correct.unwrap_or(0) as f64 / self.n as f64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert!(NoisyVoterProtocol::new(1, 0.2, 10).is_err());
        assert!(NoisyVoterProtocol::new(10, 0.6, 10).is_err());
        assert!(NoisyVoterProtocol::new(10, 0.2, 10).is_ok());
    }

    #[test]
    fn noisy_voter_hovers_near_a_fair_coin() {
        let protocol = NoisyVoterProtocol::new(400, 0.1, 600).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 5).unwrap();
        assert!(
            outcome.fraction_correct > 0.3 && outcome.fraction_correct < 0.8,
            "outcome = {outcome:?}"
        );
        assert!(!outcome.all_correct);
    }

    #[test]
    fn trajectory_has_one_entry_per_round() {
        let protocol = NoisyVoterProtocol::new(100, 0.2, 50).unwrap();
        let trajectory = protocol.run_trajectory(Opinion::One, 1).unwrap();
        assert_eq!(trajectory.len(), 50);
        assert!(trajectory.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn zealot_never_changes_its_opinion() {
        let mut rng = SimRng::from_seed(0);
        let mut zealot = VoterAgent {
            opinion: Some(Opinion::One),
            is_zealot: true,
        };
        let _ = zealot.deliver(0, Opinion::Zero, &mut rng);
        assert_eq!(zealot.opinion(), Some(Opinion::One));

        let mut voter = VoterAgent::default();
        let _ = voter.deliver(0, Opinion::Zero, &mut rng);
        assert_eq!(voter.opinion(), Some(Opinion::Zero));
        let _ = voter.deliver(1, Opinion::One, &mut rng);
        assert_eq!(voter.opinion(), Some(Opinion::One));
    }
}
