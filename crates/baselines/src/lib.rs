//! Comparator protocols ("baselines") for the *Breathe before Speaking*
//! reproduction.
//!
//! The paper motivates its protocol by explaining why the obvious strategies
//! fail in the Flip model (§1.6) and by situating it among related dynamics
//! from distributed computing and physics (§1.2).  This crate implements those
//! comparators so that the experiments can reproduce the paper's qualitative
//! comparisons:
//!
//! * [`bft`] — gossip adaptations of classic binary Byzantine-consensus
//!   protocols (Ben-Or, BV-broadcast, safe BBC) plus the Stage-II style
//!   majority boost, the comparators of the E13 fault-tolerance family.
//! * [`forwarding`] — *immediately forward what you heard*: reliability decays
//!   exponentially with the hop count, so the population converges to a
//!   near-coin-flip mixture.
//! * [`wait_source`] — *stay silent and listen only to the source*: reliable
//!   but needs `Θ(n log n / ε²)` rounds, a factor `n` slower than breathe.
//! * [`two_choices`] — the two-choices majority dynamics of Doerr et al.,
//!   which converges from a large initial bias in the noiseless setting but
//!   has no mechanism to create a bias from a single source under noise.
//! * [`three_state`] — the Angluin–Aspnes–Eisenstat three-state approximate
//!   majority population protocol (needs a third symbol, which the Flip model
//!   forbids; simulated with pairwise interactions for comparison).
//! * [`noisy_voter`] — the physicists' noisy voter model with a zealot source,
//!   whose convergence time is polynomial in `n`.
//! * [`path_deterioration`] — the `1/2 + (2ε)^c / 2` per-hop reliability decay
//!   that motivates breathing before speaking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bft;
pub mod forwarding;
pub mod noisy_voter;
pub mod path_deterioration;
pub mod three_state;
pub mod two_choices;
pub mod wait_source;

pub use bft::{BenOrAgent, BvBroadcastAgent, MajorityBoostAgent, SafeBbcAgent};
pub use forwarding::{ForwardingAgent, ForwardingProtocol};
pub use noisy_voter::NoisyVoterProtocol;
pub use path_deterioration::{chain_correct_probability, simulate_chain};
pub use three_state::{ThreeState, ThreeStateProtocol};
pub use two_choices::TwoChoicesProtocol;
pub use wait_source::WaitForSourceProtocol;

use flip_model::Opinion;

/// The outcome shared by every baseline runner.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Population size.
    pub n: usize,
    /// Noise margin `ε` of the channel the baseline ran over.
    pub epsilon: f64,
    /// The correct opinion the population was supposed to converge to.
    pub correct: Opinion,
    /// Rounds executed.
    pub rounds: u64,
    /// Messages (bits) pushed in total.
    pub messages_sent: u64,
    /// Fraction of all agents holding the correct opinion at the end.
    pub fraction_correct: f64,
    /// Whether every agent held the correct opinion at the end.
    pub all_correct: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_outcome_is_plain_data() {
        let outcome = BaselineOutcome {
            n: 10,
            epsilon: 0.2,
            correct: Opinion::One,
            rounds: 5,
            messages_sent: 40,
            fraction_correct: 0.7,
            all_correct: false,
        };
        let copy = outcome.clone();
        assert_eq!(outcome, copy);
    }
}
