//! The "immediately forward what you heard" strategy of paper §1.6.
//!
//! An agent adopts the first message it hears as its opinion and from the next
//! round on pushes that opinion every round until the protocol ends.  Without
//! the waiting ("breathing") of Stage I, the typical agent sits at the end of a
//! forwarding chain of length `Θ(log n)`, so the probability that its opinion
//! matches the source's is only `1/2 + (2ε)^{Θ(log n)}` — indistinguishable
//! from a coin flip for small `ε`.  This baseline reproduces exactly that
//! failure mode.

use flip_model::{
    Agent, BinarySymmetricChannel, FlipError, Opinion, OpinionDelta, Round, SimRng, Simulation,
    SimulationConfig,
};

use crate::BaselineOutcome;

/// An agent running the immediate-forwarding strategy.
#[derive(Debug, Clone, Default)]
pub struct ForwardingAgent {
    opinion: Option<Opinion>,
    adopted_at: Option<Round>,
}

impl ForwardingAgent {
    /// An uninformed agent.
    #[must_use]
    pub fn uninformed() -> Self {
        Self::default()
    }

    /// The source: informed from round 0.
    #[must_use]
    pub fn source(opinion: Opinion) -> Self {
        Self {
            opinion: Some(opinion),
            adopted_at: Some(0),
        }
    }

    /// Round at which the agent adopted its opinion, if it has.
    #[must_use]
    pub fn adopted_at(&self) -> Option<Round> {
        self.adopted_at
    }
}

impl Agent for ForwardingAgent {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        // Forward from the round after adoption (a message heard this round is
        // only forwarded starting next round).
        match (self.opinion, self.adopted_at) {
            (Some(op), Some(adopted)) if round > adopted || adopted == 0 => Some(op),
            _ => None,
        }
    }

    fn deliver(&mut self, round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        if self.opinion.is_none() {
            self.opinion = Some(message);
            self.adopted_at = Some(round);
            OpinionDelta::adopted(message)
        } else {
            OpinionDelta::NONE
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        self.opinion
    }
}

/// Runner for the immediate-forwarding baseline.
///
/// # Example
///
/// ```
/// use baselines::ForwardingProtocol;
/// use flip_model::Opinion;
///
/// let outcome = ForwardingProtocol::new(500, 0.1, 200)
///     .unwrap()
///     .run_with_seed(Opinion::One, 1)
///     .unwrap();
/// // With noise this strategy ends far from consensus.
/// assert!(outcome.fraction_correct < 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct ForwardingProtocol {
    n: usize,
    epsilon: f64,
    rounds: u64,
}

impl ForwardingProtocol {
    /// Creates a runner over `n` agents with noise margin `ε`, running for `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError`] if `n < 2` or `ε ∉ (0, 1/2]`.
    pub fn new(n: usize, epsilon: f64, rounds: u64) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        BinarySymmetricChannel::from_epsilon(epsilon)?;
        Ok(Self { n, epsilon, rounds })
    }

    /// Runs one execution in which the source holds `correct`.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from engine construction.
    pub fn run_with_seed(&self, correct: Opinion, seed: u64) -> Result<BaselineOutcome, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.epsilon)?;
        let mut agents = vec![ForwardingAgent::uninformed(); self.n];
        agents[0] = ForwardingAgent::source(correct);
        let config = SimulationConfig::new(self.n)
            .with_seed(seed)
            .with_reference(correct);
        let mut sim = Simulation::new(agents, channel, config)?;
        sim.run(self.rounds);
        let census = sim.census();
        Ok(BaselineOutcome {
            n: self.n,
            epsilon: self.epsilon,
            correct,
            rounds: self.rounds,
            messages_sent: sim.metrics().messages_sent,
            fraction_correct: census.fraction_correct(correct),
            all_correct: census.is_unanimous(correct),
        })
    }

    /// Runs one execution and also reports how many rounds it took to inform
    /// everybody (`None` if some agent never heard anything).
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from engine construction.
    pub fn run_until_informed(
        &self,
        correct: Opinion,
        seed: u64,
    ) -> Result<(BaselineOutcome, Option<u64>), FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.epsilon)?;
        let mut agents = vec![ForwardingAgent::uninformed(); self.n];
        agents[0] = ForwardingAgent::source(correct);
        let config = SimulationConfig::new(self.n)
            .with_seed(seed)
            .with_reference(correct)
            .with_history(true);
        let mut sim = Simulation::new(agents, channel, config)?;
        sim.run(self.rounds);
        let informed_round = sim.trace().round_reaching_active(self.n);
        let census = sim.census();
        Ok((
            BaselineOutcome {
                n: self.n,
                epsilon: self.epsilon,
                correct,
                rounds: self.rounds,
                messages_sent: sim.metrics().messages_sent,
                fraction_correct: census.fraction_correct(correct),
                all_correct: census.is_unanimous(correct),
            },
            informed_round,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert!(ForwardingProtocol::new(1, 0.2, 10).is_err());
        assert!(ForwardingProtocol::new(10, 0.0, 10).is_err());
        assert!(ForwardingProtocol::new(10, 0.2, 10).is_ok());
    }

    #[test]
    fn forwarding_informs_everyone_quickly() {
        let protocol = ForwardingProtocol::new(500, 0.45, 200).unwrap();
        let (_, informed) = protocol.run_until_informed(Opinion::One, 3).unwrap();
        let informed = informed.expect("everyone should hear something in 200 rounds");
        // Exponential growth: ~log n rounds, far less than 200.
        assert!(informed < 100, "informed after {informed} rounds");
    }

    #[test]
    fn forwarding_is_accurate_without_noise_margin_loss() {
        // epsilon = 0.5 means a noiseless channel: forwarding then works.
        let protocol = ForwardingProtocol::new(300, 0.5, 150).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 5).unwrap();
        assert!(outcome.fraction_correct > 0.99, "outcome = {outcome:?}");
    }

    #[test]
    fn forwarding_degrades_under_noise() {
        // With strong noise the typical opinion is close to a coin flip.
        let protocol = ForwardingProtocol::new(1_000, 0.1, 300).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 7).unwrap();
        assert!(
            outcome.fraction_correct < 0.75,
            "forwarding should be unreliable, got {}",
            outcome.fraction_correct
        );
    }

    #[test]
    fn source_sends_from_round_zero_and_adopters_from_the_next_round() {
        let mut rng = SimRng::from_seed(0);
        let mut source = ForwardingAgent::source(Opinion::One);
        assert_eq!(source.send(0, &mut rng), Some(Opinion::One));

        let mut adopter = ForwardingAgent::uninformed();
        assert_eq!(adopter.send(0, &mut rng), None);
        let _ = adopter.deliver(4, Opinion::Zero, &mut rng);
        assert_eq!(adopter.adopted_at(), Some(4));
        assert_eq!(adopter.send(4, &mut rng), None);
        assert_eq!(adopter.send(5, &mut rng), Some(Opinion::Zero));
    }

    #[test]
    fn first_message_wins() {
        let mut rng = SimRng::from_seed(0);
        let mut agent = ForwardingAgent::uninformed();
        let _ = agent.deliver(1, Opinion::Zero, &mut rng);
        let _ = agent.deliver(2, Opinion::One, &mut rng);
        assert_eq!(agent.opinion(), Some(Opinion::Zero));
    }
}
