//! The two-choices majority dynamics of Doerr et al. (paper §1.2, reference [22]).
//!
//! Every agent repeatedly samples the opinions of two other agents chosen
//! uniformly at random and re-sets its own opinion to the majority among its
//! own opinion and the two samples.  In the noiseless setting this converges
//! to the initial majority in `O(log n)` rounds provided the initial bias is
//! `Ω(√(log n / n))`.  Run over the noisy Flip channel it plateaus: even from
//! unanimity, a constant fraction of agents see two corrupted samples each
//! update and flip away, so full consensus is never reached — which is why the
//! paper's Stage II ends with a large-sample majority vote instead.
//!
//! The dynamics are expressed in the push-gossip engine as follows: every
//! agent pushes its opinion every round; an agent buffers the (noisy) messages
//! it accepts and, as soon as it holds two, applies the majority update and
//! clears the buffer.

use flip_model::{
    Agent, BinarySymmetricChannel, FlipError, Opinion, OpinionDelta, Round, SimRng, Simulation,
    SimulationConfig,
};

use crate::BaselineOutcome;

/// An agent running the two-choices dynamics over push gossip.
#[derive(Debug, Clone)]
struct TwoChoicesAgent {
    opinion: Opinion,
    buffer: Vec<Opinion>,
}

impl Agent for TwoChoicesAgent {
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        Some(self.opinion)
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        self.buffer.push(message);
        OpinionDelta::NONE
    }

    fn end_round(&mut self, _round: Round, _rng: &mut SimRng) -> OpinionDelta {
        if self.buffer.len() >= 2 {
            let before = self.opinion;
            let ones = self
                .buffer
                .iter()
                .take(2)
                .filter(|&&m| m == Opinion::One)
                .count()
                + usize::from(self.opinion == Opinion::One);
            self.opinion = if ones >= 2 {
                Opinion::One
            } else {
                Opinion::Zero
            };
            self.buffer.clear();
            OpinionDelta::between(Some(before), Some(self.opinion))
        } else {
            OpinionDelta::NONE
        }
    }

    fn opinion(&self) -> Option<Opinion> {
        Some(self.opinion)
    }
}

/// Runner for the two-choices majority dynamics.
///
/// # Example
///
/// ```
/// use baselines::TwoChoicesProtocol;
/// use flip_model::Opinion;
///
/// // Noiseless (epsilon = 0.5), strong initial majority: converges.
/// let protocol = TwoChoicesProtocol::new(300, 0.5, 120).unwrap();
/// let outcome = protocol.run_with_seed(Opinion::One, 200, 1).unwrap();
/// assert!(outcome.fraction_correct > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct TwoChoicesProtocol {
    n: usize,
    epsilon: f64,
    rounds: u64,
}

impl TwoChoicesProtocol {
    /// Creates a runner over `n` agents with noise margin `ε`, running for `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError`] if `n < 2` or `ε ∉ (0, 1/2]`.
    pub fn new(n: usize, epsilon: f64, rounds: u64) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        BinarySymmetricChannel::from_epsilon(epsilon)?;
        Ok(Self { n, epsilon, rounds })
    }

    /// Runs one execution with `initially_correct` agents holding `correct` and
    /// the rest holding the opposite opinion.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if `initially_correct > n`, and
    /// propagates engine errors.
    pub fn run_with_seed(
        &self,
        correct: Opinion,
        initially_correct: usize,
        seed: u64,
    ) -> Result<BaselineOutcome, FlipError> {
        if initially_correct > self.n {
            return Err(FlipError::InvalidParameter {
                name: "initially_correct",
                message: format!(
                    "{initially_correct} initially-correct agents exceed the population of {}",
                    self.n
                ),
            });
        }
        let channel = BinarySymmetricChannel::from_epsilon(self.epsilon)?;
        let agents: Vec<TwoChoicesAgent> = (0..self.n)
            .map(|i| TwoChoicesAgent {
                opinion: if i < initially_correct {
                    correct
                } else {
                    correct.flipped()
                },
                buffer: Vec::with_capacity(2),
            })
            .collect();
        let config = SimulationConfig::new(self.n)
            .with_seed(seed)
            .with_reference(correct);
        let mut sim = Simulation::new(agents, channel, config)?;
        sim.run(self.rounds);
        let census = sim.census();
        Ok(BaselineOutcome {
            n: self.n,
            epsilon: self.epsilon,
            correct,
            rounds: self.rounds,
            messages_sent: sim.metrics().messages_sent,
            fraction_correct: census.fraction_correct(correct),
            all_correct: census.is_unanimous(correct),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert!(TwoChoicesProtocol::new(1, 0.3, 10).is_err());
        assert!(TwoChoicesProtocol::new(10, 0.0, 10).is_err());
        assert!(TwoChoicesProtocol::new(10, 0.3, 10).is_ok());
    }

    #[test]
    fn rejects_oversized_initial_majority() {
        let protocol = TwoChoicesProtocol::new(10, 0.3, 10).unwrap();
        assert!(protocol.run_with_seed(Opinion::One, 11, 0).is_err());
    }

    #[test]
    fn noiseless_dynamics_amplify_a_clear_majority() {
        let protocol = TwoChoicesProtocol::new(400, 0.5, 200).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 260, 3).unwrap();
        assert!(outcome.fraction_correct > 0.98, "outcome = {outcome:?}");
    }

    #[test]
    fn noisy_dynamics_plateau_below_full_consensus() {
        let protocol = TwoChoicesProtocol::new(400, 0.15, 400).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 400, 4).unwrap();
        // Even starting from unanimity, channel noise keeps knocking agents off;
        // at this noise level the dynamics drift all the way back towards a
        // fair coin (which is exactly why Stage II ends with a large-sample vote).
        assert!(!outcome.all_correct, "outcome = {outcome:?}");
        assert!(outcome.fraction_correct < 0.995);
        assert!(outcome.fraction_correct > 0.25);
    }

    #[test]
    fn majority_update_uses_own_opinion_plus_two_samples() {
        let mut rng = SimRng::from_seed(0);
        let mut agent = TwoChoicesAgent {
            opinion: Opinion::Zero,
            buffer: Vec::new(),
        };
        let _ = agent.deliver(0, Opinion::One, &mut rng);
        let _ = agent.end_round(0, &mut rng);
        // Only one sample: no update yet.
        assert_eq!(agent.opinion(), Some(Opinion::Zero));
        let _ = agent.deliver(1, Opinion::One, &mut rng);
        let _ = agent.deliver(1, Opinion::One, &mut rng);
        let _ = agent.end_round(1, &mut rng);
        // Two one-samples beat the zero own-opinion.
        assert_eq!(agent.opinion(), Some(Opinion::One));
    }
}
