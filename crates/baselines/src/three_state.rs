//! The three-state approximate-majority population protocol of Angluin,
//! Aspnes and Eisenstat (paper §1.2, reference [6]).
//!
//! Agents hold one of three states — the two opinions plus *blank* — and
//! interact in random ordered pairs.  When an opinionated initiator meets a
//! responder of the opposite opinion, the responder becomes blank; when it
//! meets a blank responder, the responder adopts the initiator's opinion.
//! Angluin et al. show convergence to the initial majority in `O(log n)`
//! parallel time and robustness to a small number of Byzantine agents.
//!
//! The paper stresses that this protocol **cannot be used in the Flip model**:
//! it inherently needs a three-symbol alphabet, while the Flip model allows a
//! single bit per message (§1.2).  It is implemented here — on its own
//! pairwise-interaction scheduler rather than the single-bit push-gossip
//! engine — purely as a comparator, with optional opinion-flip noise applied
//! to the transmitted state to show how its accuracy degrades.

use flip_model::{majority_bias, FlipError, Opinion, SimRng};
use rand::Rng;

use crate::BaselineOutcome;

/// A state of the three-state protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreeState {
    /// Holding an opinion.
    Holding(Opinion),
    /// Undecided ("blank").
    Blank,
}

impl ThreeState {
    /// The opinion held, if any.
    #[must_use]
    pub fn opinion(self) -> Option<Opinion> {
        match self {
            ThreeState::Holding(op) => Some(op),
            ThreeState::Blank => None,
        }
    }
}

/// Runner for the three-state approximate-majority protocol.
///
/// One "round" performs `n` random ordered pairwise interactions (so that
/// parallel time is comparable to the synchronous rounds of the other
/// baselines).
///
/// # Example
///
/// ```
/// use baselines::ThreeStateProtocol;
/// use flip_model::Opinion;
///
/// let protocol = ThreeStateProtocol::new(300, 0.5, 60).unwrap();
/// let outcome = protocol.run_with_seed(Opinion::One, 180, 120, 2).unwrap();
/// assert!(outcome.fraction_correct > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct ThreeStateProtocol {
    n: usize,
    /// Probability that a transmitted opinion is flipped (`1/2 − ε`), mirroring
    /// the Flip-model noise applied to this protocol's (illegal) larger alphabet.
    epsilon: f64,
    rounds: u64,
}

impl ThreeStateProtocol {
    /// Creates a runner over `n` agents, with noise margin `ε`, for `rounds` parallel rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError`] if `n < 2` or `ε ∉ (0, 1/2]`.
    pub fn new(n: usize, epsilon: f64, rounds: u64) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon > 0.5 {
            return Err(FlipError::InvalidEpsilon { epsilon });
        }
        Ok(Self { n, epsilon, rounds })
    }

    /// Runs one execution with `initially_correct` agents holding `correct`,
    /// `initially_wrong` agents holding the opposite opinion, and the rest blank.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError::InvalidParameter`] if the initial counts exceed `n`.
    pub fn run_with_seed(
        &self,
        correct: Opinion,
        initially_correct: usize,
        initially_wrong: usize,
        seed: u64,
    ) -> Result<BaselineOutcome, FlipError> {
        if initially_correct + initially_wrong > self.n {
            return Err(FlipError::InvalidParameter {
                name: "initial_counts",
                message: format!(
                    "{initially_correct} + {initially_wrong} opinionated agents exceed n = {}",
                    self.n
                ),
            });
        }
        let mut rng = SimRng::from_seed(seed);
        let flip_probability = 0.5 - self.epsilon;
        let mut states: Vec<ThreeState> = (0..self.n)
            .map(|i| {
                if i < initially_correct {
                    ThreeState::Holding(correct)
                } else if i < initially_correct + initially_wrong {
                    ThreeState::Holding(correct.flipped())
                } else {
                    ThreeState::Blank
                }
            })
            .collect();

        let mut interactions = 0u64;
        for _ in 0..self.rounds {
            for _ in 0..self.n {
                let initiator = rng.gen_range(0..self.n);
                let mut responder = rng.gen_range(0..self.n - 1);
                if responder >= initiator {
                    responder += 1;
                }
                if let ThreeState::Holding(sent) = states[initiator] {
                    interactions += 1;
                    // The transmitted opinion passes through the noisy channel.
                    let received = if rng.chance(flip_probability) {
                        sent.flipped()
                    } else {
                        sent
                    };
                    states[responder] = match states[responder] {
                        ThreeState::Blank => ThreeState::Holding(received),
                        ThreeState::Holding(current) if current != received => ThreeState::Blank,
                        keep => keep,
                    };
                }
            }
        }

        let holding_correct = states
            .iter()
            .filter(|s| s.opinion() == Some(correct))
            .count();
        Ok(BaselineOutcome {
            n: self.n,
            epsilon: self.epsilon,
            correct,
            rounds: self.rounds,
            messages_sent: interactions,
            fraction_correct: holding_correct as f64 / self.n as f64,
            all_correct: holding_correct == self.n,
        })
    }

    /// The majority-bias of an initial configuration, for convenience.
    #[must_use]
    pub fn initial_bias(initially_correct: usize, initially_wrong: usize) -> f64 {
        majority_bias(initially_correct, initially_wrong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert!(ThreeStateProtocol::new(1, 0.3, 10).is_err());
        assert!(ThreeStateProtocol::new(10, 0.0, 10).is_err());
        assert!(ThreeStateProtocol::new(10, 0.3, 10).is_ok());
    }

    #[test]
    fn rejects_oversized_initial_sets() {
        let protocol = ThreeStateProtocol::new(10, 0.3, 10).unwrap();
        assert!(protocol.run_with_seed(Opinion::One, 8, 8, 0).is_err());
    }

    #[test]
    fn noiseless_protocol_converges_to_the_initial_majority() {
        let protocol = ThreeStateProtocol::new(500, 0.5, 80).unwrap();
        let outcome = protocol.run_with_seed(Opinion::Zero, 300, 200, 1).unwrap();
        assert!(outcome.fraction_correct > 0.95, "outcome = {outcome:?}");
    }

    #[test]
    fn noise_prevents_full_consensus() {
        let protocol = ThreeStateProtocol::new(500, 0.15, 200).unwrap();
        let outcome = protocol.run_with_seed(Opinion::Zero, 500, 0, 2).unwrap();
        assert!(!outcome.all_correct, "outcome = {outcome:?}");
    }

    #[test]
    fn blank_agents_adopt_and_conflicts_blank() {
        assert_eq!(ThreeState::Blank.opinion(), None);
        assert_eq!(
            ThreeState::Holding(Opinion::One).opinion(),
            Some(Opinion::One)
        );
    }

    #[test]
    fn initial_bias_helper_matches_paper_definition() {
        assert!((ThreeStateProtocol::initial_bias(70, 30) - 0.2).abs() < 1e-12);
    }
}
