//! The "stay silent and listen only to the source" strategy of paper §1.6.
//!
//! Only the source ever transmits; every other agent passively accumulates the
//! (noisy) bits it happens to receive and holds the majority of what it has
//! heard.  This is perfectly reliable in the limit but extremely slow: an
//! individual agent is the recipient of a source message only with probability
//! `1/n` per round, so it needs `Θ(n·log n / ε²)` rounds to gather the
//! `Θ(log n / ε²)` samples required for a confident majority — a factor `n`
//! slower than the breathe-before-speaking protocol.

use flip_model::{
    Agent, BinarySymmetricChannel, FlipError, Opinion, OpinionDelta, Round, SimRng, Simulation,
    SimulationConfig,
};

use crate::BaselineOutcome;

/// An agent running the wait-for-source strategy.
#[derive(Debug, Clone, Default)]
struct WaitAgent {
    source_opinion: Option<Opinion>,
    zeros: u64,
    ones: u64,
}

impl Agent for WaitAgent {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        self.source_opinion
    }

    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        if self.source_opinion.is_some() {
            return OpinionDelta::NONE; // the source ignores incoming messages
        }
        // The running majority can change (or vanish into a tie) with every
        // sample, so capture the derived opinion around the update.
        let before = self.opinion();
        match message {
            Opinion::Zero => self.zeros += 1,
            Opinion::One => self.ones += 1,
        }
        OpinionDelta::between(before, self.opinion())
    }

    fn opinion(&self) -> Option<Opinion> {
        if let Some(op) = self.source_opinion {
            return Some(op);
        }
        match self.ones.cmp(&self.zeros) {
            std::cmp::Ordering::Greater => Some(Opinion::One),
            std::cmp::Ordering::Less => Some(Opinion::Zero),
            std::cmp::Ordering::Equal => None,
        }
    }
}

/// Runner for the wait-for-source baseline.
///
/// # Example
///
/// ```
/// use baselines::WaitForSourceProtocol;
/// use flip_model::Opinion;
///
/// let protocol = WaitForSourceProtocol::new(200, 0.3, 400).unwrap();
/// let outcome = protocol.run_with_seed(Opinion::One, 1).unwrap();
/// // 400 rounds is nowhere near the Θ(n log n / ε²) this strategy needs.
/// assert!(!outcome.all_correct);
/// ```
#[derive(Debug, Clone)]
pub struct WaitForSourceProtocol {
    n: usize,
    epsilon: f64,
    rounds: u64,
}

impl WaitForSourceProtocol {
    /// Creates a runner over `n` agents with noise margin `ε`, running for `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlipError`] if `n < 2` or `ε ∉ (0, 1/2]`.
    pub fn new(n: usize, epsilon: f64, rounds: u64) -> Result<Self, FlipError> {
        if n < 2 {
            return Err(FlipError::PopulationTooSmall { n });
        }
        BinarySymmetricChannel::from_epsilon(epsilon)?;
        Ok(Self { n, epsilon, rounds })
    }

    /// Rounds this strategy needs, in expectation, for a typical agent to hold a
    /// confident majority: `confidence_factor · n · ln n / ε²`.
    ///
    /// This is the `Θ(n log n / ε²)` bound of paper §1.4/§1.6 with the
    /// constant exposed as `confidence_factor`.
    #[must_use]
    pub fn predicted_rounds(n: usize, epsilon: f64, confidence_factor: f64) -> f64 {
        confidence_factor * n as f64 * (n as f64).ln() / (epsilon * epsilon)
    }

    /// Runs one execution in which the source holds `correct`.
    ///
    /// # Errors
    ///
    /// Propagates [`FlipError`] from engine construction.
    pub fn run_with_seed(&self, correct: Opinion, seed: u64) -> Result<BaselineOutcome, FlipError> {
        let channel = BinarySymmetricChannel::from_epsilon(self.epsilon)?;
        let mut agents = vec![WaitAgent::default(); self.n];
        agents[0].source_opinion = Some(correct);
        let config = SimulationConfig::new(self.n)
            .with_seed(seed)
            .with_reference(correct);
        let mut sim = Simulation::new(agents, channel, config)?;
        sim.run(self.rounds);
        let census = sim.census();
        Ok(BaselineOutcome {
            n: self.n,
            epsilon: self.epsilon,
            correct,
            rounds: self.rounds,
            messages_sent: sim.metrics().messages_sent,
            fraction_correct: census.fraction_correct(correct),
            all_correct: census.is_unanimous(correct),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_inputs() {
        assert!(WaitForSourceProtocol::new(1, 0.2, 10).is_err());
        assert!(WaitForSourceProtocol::new(10, 0.7, 10).is_err());
        assert!(WaitForSourceProtocol::new(10, 0.2, 10).is_ok());
    }

    #[test]
    fn only_the_source_sends() {
        let protocol = WaitForSourceProtocol::new(100, 0.3, 50).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 2).unwrap();
        // Exactly one message per round.
        assert_eq!(outcome.messages_sent, 50);
    }

    #[test]
    fn short_runs_leave_most_agents_undecided_or_unreliable() {
        let protocol = WaitForSourceProtocol::new(500, 0.2, 500).unwrap();
        let outcome = protocol.run_with_seed(Opinion::One, 3).unwrap();
        // 500 rounds gives each agent roughly one sample; far from consensus.
        assert!(outcome.fraction_correct < 0.9, "outcome = {outcome:?}");
        assert!(!outcome.all_correct);
    }

    #[test]
    fn very_long_runs_do_converge_on_tiny_populations() {
        // n = 20, epsilon = 0.4: each agent needs a handful of samples and gets
        // one every ~20 rounds; 4000 rounds is plenty.
        let protocol = WaitForSourceProtocol::new(20, 0.4, 4_000).unwrap();
        let outcome = protocol.run_with_seed(Opinion::Zero, 4).unwrap();
        assert!(outcome.fraction_correct > 0.9, "outcome = {outcome:?}");
    }

    #[test]
    fn predicted_rounds_scales_linearly_in_n() {
        let small = WaitForSourceProtocol::predicted_rounds(100, 0.2, 1.0);
        let large = WaitForSourceProtocol::predicted_rounds(1_000, 0.2, 1.0);
        assert!(large / small > 9.0);
    }

    #[test]
    fn undecided_agents_report_no_opinion() {
        let agent = WaitAgent::default();
        assert_eq!(agent.opinion(), None);
        let mut agent = WaitAgent::default();
        let mut rng = SimRng::from_seed(0);
        let _ = agent.deliver(0, Opinion::One, &mut rng);
        let _ = agent.deliver(1, Opinion::Zero, &mut rng);
        assert_eq!(agent.opinion(), None, "ties stay undecided");
        let _ = agent.deliver(2, Opinion::One, &mut rng);
        assert_eq!(agent.opinion(), Some(Opinion::One));
    }
}
