//! Per-hop reliability decay along a forwarding chain (paper §1.6).
//!
//! If a bit is relayed over a path of `c` noisy hops, each flipping it
//! independently with probability `1/2 − ε`, then the probability that the
//! final copy equals the original is exactly `1/2 + (2ε)^c / 2`.  This is the
//! quantitative reason why "immediately forward what you heard" fails: the
//! typical agent in a push-gossip spread sits at depth `Θ(log n)`, so its
//! first message is essentially a coin flip.

use flip_model::{BinarySymmetricChannel, Channel, FlipError, Opinion, SimRng};

/// Exact probability that a bit relayed over `hops` independent binary
/// symmetric channels with crossover `1/2 − ε` arrives uncorrupted.
///
/// # Example
///
/// ```
/// use baselines::chain_correct_probability;
///
/// // One hop: 1/2 + ε.
/// assert!((chain_correct_probability(0.2, 1) - 0.7).abs() < 1e-12);
/// // Long chains converge to a fair coin.
/// assert!((chain_correct_probability(0.2, 20) - 0.5).abs() < 1e-6);
/// ```
#[must_use]
pub fn chain_correct_probability(epsilon: f64, hops: u32) -> f64 {
    0.5 + 0.5 * (2.0 * epsilon).powi(hops as i32)
}

/// Monte-Carlo estimate of the same probability, obtained by actually pushing
/// a bit through `hops` instances of [`BinarySymmetricChannel`].
///
/// # Errors
///
/// Returns [`FlipError::InvalidEpsilon`] if `ε ∉ (0, 1/2]` and
/// [`FlipError::InvalidParameter`] if `trials` is zero.
pub fn simulate_chain(epsilon: f64, hops: u32, trials: u32, seed: u64) -> Result<f64, FlipError> {
    if trials == 0 {
        return Err(FlipError::InvalidParameter {
            name: "trials",
            message: "at least one trial is required".to_string(),
        });
    }
    let channel = BinarySymmetricChannel::from_epsilon(epsilon)?;
    let mut rng = SimRng::from_seed(seed);
    let mut correct = 0u32;
    for _ in 0..trials {
        let original = Opinion::random(&mut rng);
        let mut bit = original;
        for _ in 0..hops {
            bit = channel.transmit(bit, &mut rng);
        }
        if bit == original {
            correct += 1;
        }
    }
    Ok(f64::from(correct) / f64::from(trials))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hops_are_always_correct() {
        assert!((chain_correct_probability(0.1, 0) - 1.0).abs() < 1e-12);
        let simulated = simulate_chain(0.1, 0, 1_000, 1).unwrap();
        assert!((simulated - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_decreases_monotonically_with_hops() {
        let eps = 0.25;
        let mut last = 1.0;
        for hops in 0..10 {
            let p = chain_correct_probability(eps, hops);
            assert!(p <= last + 1e-12);
            assert!(p >= 0.5);
            last = p;
        }
    }

    #[test]
    fn simulation_matches_the_closed_form() {
        for &(eps, hops) in &[(0.3, 1u32), (0.3, 3), (0.2, 5), (0.45, 2)] {
            let exact = chain_correct_probability(eps, hops);
            let simulated = simulate_chain(eps, hops, 40_000, 7).unwrap();
            assert!(
                (exact - simulated).abs() < 0.02,
                "eps={eps} hops={hops}: exact {exact} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(simulate_chain(0.0, 3, 100, 0).is_err());
        assert!(simulate_chain(0.3, 3, 0, 0).is_err());
    }

    #[test]
    fn noiseless_chain_is_perfect() {
        assert!((chain_correct_probability(0.5, 30) - 1.0).abs() < 1e-12);
        let simulated = simulate_chain(0.5, 30, 500, 3).unwrap();
        assert!((simulated - 1.0).abs() < 1e-12);
    }
}
