//! The subset of `rand::distributions` / `rand_distr` the workspace uses:
//! the [`Distribution`] trait and an exact [`Binomial`] sampler.
//!
//! The binomial sampler is the workhorse of the dense population engine in
//! `flip-model`: one simulation round draws a handful of binomials instead of
//! iterating over up to 10⁷ agents, so the sampler must be O(1) in `n`.  It
//! follows the standard two-regime scheme:
//!
//! * **BINV** (inversion) when `n·min(p, 1−p) < 10`: walk the CDF from 0,
//!   which takes `O(n·p)` expected steps — cheap exactly when the mean is
//!   small.
//! * **BTPE** (Kachitvichyanukul & Schmeiser, *Binomial random variate
//!   generation*, CACM 31(2), 1988) otherwise: an acceptance/rejection
//!   scheme over a triangle + parallelogram + two exponential tails envelope
//!   whose expected number of iterations is bounded by a constant
//!   independent of `n` and `p`.
//!
//! Both regimes sample the *exact* binomial distribution (up to f64
//! rounding), not a normal approximation.

use crate::{Rng, RngCore};

/// Types that sample values of `T` from a random source, mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A uniform sampler over `[0, bound)` with Lemire's nearly-divisionless
/// method *and a cached rejection threshold*.
///
/// `sample` costs one `next_u64`, one 64×64→128 multiply and one compare on
/// the overwhelmingly common path; the `2^64 mod bound` division that plain
/// one-shot Lemire sampling must evaluate lazily on its cold path is paid
/// once at construction.  Use this for a bound drawn from many times; use
/// `Rng::gen_range` for ad-hoc bounds.  (The gossip scheduler inlines the
/// same cached-threshold technique at 32 bits for its recipient draws.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformIndex {
    bound: u64,
    /// `2^64 mod bound`: draws whose low product half falls below this are
    /// rejected, which makes the high half exactly uniform.
    threshold: u64,
}

impl UniformIndex {
    /// Creates a sampler over `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "cannot sample an empty range");
        Self {
            bound,
            threshold: bound.wrapping_neg() % bound,
        }
    }

    /// The exclusive upper bound of the sampler.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draws one value uniformly from `[0, bound)`.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let m = u128::from(rng.next_u64()) * u128::from(self.bound);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Error returned by [`Binomial::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinomialError {
    /// `p` was not a probability in `[0, 1]`.
    ProbabilityOutOfRange,
}

impl std::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("binomial success probability must lie in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// The binomial distribution `Bin(n, p)`: the number of successes among `n`
/// independent trials that each succeed with probability `p`.
///
/// # Example
///
/// ```
/// use rand::distributions::{Binomial, Distribution};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let coin_flips = Binomial::new(1_000_000, 0.5).unwrap();
/// let heads = coin_flips.sample(&mut rng);
/// assert!((heads as f64 - 500_000.0).abs() < 5_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// Expected-mean threshold below which plain CDF inversion (BINV) beats BTPE.
const BINV_THRESHOLD: f64 = 10.0;
/// Abort bound for the BINV walk; P(X > 110 | n·p < 10) is below 1e-18.
const BINV_MAX_X: u64 = 110;
/// |x − mode| below which BTPE evaluates the density directly (step 5.1)
/// rather than via the squeeze bounds (steps 5.2/5.3).
const SQUEEZE_THRESHOLD: i64 = 20;

impl Binomial {
    /// Creates a `Bin(n, p)` distribution.
    ///
    /// # Errors
    ///
    /// Returns [`BinomialError::ProbabilityOutOfRange`] if `p` is not a finite
    /// probability in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(BinomialError::ProbabilityOutOfRange);
        }
        Ok(Self { n, p })
    }

    /// The number of trials `n`.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The per-trial success probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }
}

/// Converts a non-negative f64 with integral value to i64 (BTPE helper).
fn f64_to_i64(x: f64) -> i64 {
    debug_assert!(x < i64::MAX as f64);
    x as i64
}

fn binv<R: RngCore + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = ((n + 1) as f64) * s;
    // q^n underflows to 0 only when n·p is far above BINV_THRESHOLD, which
    // this regime excludes.  powf (not powi) so that n beyond i32::MAX — the
    // np < 10 regime BTPE cannot handle — stays valid.
    let r0 = q.powf(n as f64);
    let mut result = 0u64;
    let mut r = r0;
    let mut u: f64 = rng.gen();
    loop {
        u -= r;
        if u <= 0.0 {
            break;
        }
        result += 1;
        r *= a / (result as f64) - s;
        if result > BINV_MAX_X {
            // Astronomically unlikely; restart rather than walk forever.
            result = 0;
            r = r0;
            u = rng.gen();
        }
    }
    result
}

#[allow(clippy::many_single_char_names)]
fn btpe<R: RngCore + ?Sized>(n_int: u64, p: f64, rng: &mut R) -> u64 {
    // Step 0: constants depending only on n and p (p <= 1/2 here).
    let n = n_int as f64;
    let q = 1.0 - p;
    let np = n * p;
    let npq = np * q;
    let f_m = np + p;
    let m = f64_to_i64(f_m);
    // Radius (and, with height 1, area) of the central triangle region.
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    // Tip of the triangle.
    let x_m = (m as f64) + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + (m as f64));
    // Exponential-tail decay rates.
    let lambda = |a: f64| a * (1.0 + 0.5 * a);
    let lambda_l = lambda((f_m - x_l) / (f_m - x_l * p));
    let lambda_r = lambda((x_r - f_m) / (x_r * q));
    // Cumulative areas: triangle, + parallelograms, + left tail, + right tail.
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    let mut result: i64;
    loop {
        // Step 1: select a region via u, and a vertical coordinate via v.
        let u: f64 = rng.gen_range(0.0..p4);
        let mut v: f64 = rng.gen();
        if u <= p1 {
            // Triangle: accept immediately (the density dominates it).
            result = f64_to_i64(x_m - p1 * v + u);
            break;
        }
        if u <= p2 {
            // Parallelogram.
            let x = x_l + (u - p1) / c;
            v = v * c + 1.0 - (x - x_m).abs() / p1;
            if v > 1.0 {
                continue;
            }
            result = f64_to_i64(x);
        } else if u <= p3 {
            // Left exponential tail.
            result = f64_to_i64(x_l + v.ln() / lambda_l);
            if result < 0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            result = f64_to_i64(x_r - v.ln() / lambda_r);
            if result > n_int as i64 {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Step 5.0: choose how to run the acceptance test.
        let k = (result - m).abs();
        if k <= SQUEEZE_THRESHOLD || (k as f64) >= 0.5 * npq - 1.0 {
            // Step 5.1: evaluate f(x) by the recurrence from the mode.
            let s = p / q;
            let a = s * (n + 1.0);
            let mut f = 1.0;
            match m.cmp(&result) {
                std::cmp::Ordering::Less => {
                    for i in (m + 1)..=result {
                        f *= a / (i as f64) - s;
                    }
                }
                std::cmp::Ordering::Greater => {
                    for i in (result + 1)..=m {
                        f /= a / (i as f64) - s;
                    }
                }
                std::cmp::Ordering::Equal => {}
            }
            if v > f {
                continue;
            }
            break;
        }

        // Step 5.2: squeeze bounds on ln f(x).
        let kf = k as f64;
        let rho = (kf / npq) * ((kf * (kf / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
        let t = -0.5 * kf * kf / npq;
        let alpha = v.ln();
        if alpha < t - rho {
            break;
        }
        if alpha > t + rho {
            continue;
        }

        // Step 5.3: exact comparison via Stirling-corrected log factorials.
        let x1 = (result + 1) as f64;
        let f1 = (m + 1) as f64;
        let z = (n_int as i64 + 1 - m) as f64;
        let w = (n_int as i64 - result + 1) as f64;
        let stirling = |a: f64| {
            let a2 = a * a;
            (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / a2) / a2) / a2) / a2) / a / 166320.0
        };
        if alpha
            > x_m * (f1 / x1).ln()
                + (n - (m as f64) + 0.5) * (z / w).ln()
                + ((result - m) as f64) * (w * p / (x1 * q)).ln()
                + stirling(f1)
                + stirling(z)
                + stirling(x1)
                + stirling(w)
        {
            continue;
        }
        break;
    }
    debug_assert!(result >= 0);
    result as u64
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        // Degenerate cases first, so the algorithms below may assume
        // 0 < p < 1 and n >= 1.
        if self.p <= 0.0 || self.n == 0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        // Work with p <= 1/2 and mirror the result otherwise.  BINV handles
        // every small-mean case (BTPE's envelope degenerates when
        // n·min(p,q) is below the threshold, regardless of n).
        let flipped = self.p > 0.5;
        let p = if flipped { 1.0 - self.p } else { self.p };
        let sample = if (self.n as f64) * p < BINV_THRESHOLD {
            binv(self.n, p, rng)
        } else {
            btpe(self.n, p, rng)
        };
        if flipped {
            self.n - sample
        } else {
            sample
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    fn moments(n: u64, p: f64, samples: u32, seed: u64) -> (f64, f64, u64, u64) {
        let dist = Binomial::new(n, p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = u64::MAX;
        let mut max = 0;
        for _ in 0..samples {
            let x = dist.sample(&mut rng);
            min = min.min(x);
            max = max.max(x);
            sum += x as f64;
            sum_sq += (x as f64) * (x as f64);
        }
        let mean = sum / f64::from(samples);
        let var = sum_sq / f64::from(samples) - mean * mean;
        (mean, var, min, max)
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
        let b = Binomial::new(10, 0.3).unwrap();
        assert_eq!(b.n(), 10);
        assert!((b.p() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn degenerate_parameters_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Binomial::new(100, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).unwrap().sample(&mut rng), 100);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(n, p) in &[(1u64, 0.5), (7, 0.01), (100, 0.99), (10_000, 0.3)] {
            let dist = Binomial::new(n, p).unwrap();
            for _ in 0..2_000 {
                assert!(dist.sample(&mut rng) <= n);
            }
        }
    }

    #[test]
    fn binv_regime_matches_moments() {
        // n*p = 4 -> BINV path.
        let (mean, var, _, max) = moments(40, 0.1, 60_000, 3);
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 3.6).abs() < 0.25, "var = {var}");
        assert!(max <= 40);
    }

    #[test]
    fn btpe_regime_matches_moments() {
        // n*p = 300 -> BTPE path.
        let (mean, var, _, _) = moments(1_000, 0.3, 60_000, 4);
        assert!((mean - 300.0).abs() < 0.5, "mean = {mean}");
        assert!((var - 210.0).abs() < 6.0, "var = {var}");
    }

    #[test]
    fn btpe_handles_large_n() {
        // The dense engine's regime: n = 10^6.
        let (mean, var, _, _) = moments(1_000_000, 0.632, 20_000, 5);
        assert!((mean - 632_000.0).abs() < 50.0, "mean = {mean}");
        let expect_var = 1_000_000.0 * 0.632 * 0.368;
        assert!(
            (var / expect_var - 1.0).abs() < 0.05,
            "var = {var}, expected {expect_var}"
        );
    }

    #[test]
    fn flipped_probabilities_mirror() {
        // p > 1/2 exercises the mirroring path in both regimes.
        let (mean_small, _, _, _) = moments(30, 0.9, 60_000, 6);
        assert!((mean_small - 27.0).abs() < 0.1, "mean = {mean_small}");
        let (mean_large, _, _, _) = moments(5_000, 0.8, 30_000, 7);
        assert!((mean_large - 4_000.0).abs() < 1.5, "mean = {mean_large}");
    }

    #[test]
    fn extreme_tail_probabilities_are_sane() {
        // Tiny p with huge n: mean 0.5, essentially Poisson.
        let (mean, _, min, max) = moments(1_000_000, 0.000_000_5, 40_000, 8);
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
        assert_eq!(min, 0);
        assert!(max < 10);
    }

    #[test]
    fn huge_n_with_tiny_p_stays_in_the_inversion_regime() {
        // n beyond i32::MAX with np = 5: BTPE's envelope would degenerate
        // (negative triangle radius); BINV must handle it instead of
        // panicking.
        let (mean, _, _, max) = moments(5_000_000_000, 1e-9, 20_000, 14);
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
        assert!(max < 30);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = Binomial::new(123_456, 0.37).unwrap();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }

    #[test]
    fn uniform_index_stays_in_bounds_and_covers_the_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = UniformIndex::new(10);
        assert_eq!(sampler.bound(), 10);
        let mut seen = [false; 10];
        for _ in 0..2_000 {
            seen[sampler.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_index_is_roughly_uniform_at_a_non_power_of_two_bound() {
        let mut rng = StdRng::seed_from_u64(12);
        let sampler = UniformIndex::new(7);
        let mut counts = [0u32; 7];
        let trials = 70_000;
        for _ in 0..trials {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let expected = trials as f64 / 7.0;
        for &c in &counts {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "counts = {counts:?}"
            );
        }
    }

    #[test]
    fn uniform_index_handles_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let one = UniformIndex::new(1);
        for _ in 0..10 {
            assert_eq!(one.sample(&mut rng), 0);
        }
        let huge = UniformIndex::new(u64::MAX);
        for _ in 0..10 {
            assert!(huge.sample(&mut rng) < u64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_index_rejects_zero_bound() {
        let _ = UniformIndex::new(0);
    }

    #[test]
    fn distribution_shape_near_mode_is_symmetricish() {
        // For p = 1/2 the distribution is exactly symmetric around n/2; check
        // the empirical median sits at the mode.
        let dist = Binomial::new(10_000, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let below = (0..40_000)
            .filter(|_| dist.sample(&mut rng) < 5_000)
            .count() as f64;
        let frac = below / 40_000.0;
        assert!((frac - 0.5).abs() < 0.02, "frac below mode = {frac}");
    }
}
