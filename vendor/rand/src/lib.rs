//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the rand 0.8 API
//! that the simulation code uses:
//!
//! * [`RngCore`], [`SeedableRng`] and the extension trait [`Rng`]
//!   (`gen`, `gen_bool`, `gen_range`),
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded via SplitMix64,
//! * [`distributions::Binomial`] (from `rand_distr`), the exact BINV/BTPE
//!   binomial sampler used by the dense population engine,
//! * [`split_mix64`], the counter-mix core behind the simulation generator's
//!   batched refill, and [`distributions::UniformIndex`], a Lemire
//!   nearly-divisionless bounded sampler with a cached rejection threshold.
//!
//! Everything is deterministic: the same seed always yields the same stream,
//! which is what the reproduction harness relies on.

#![forbid(unsafe_code)]

pub mod distributions;

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this error is never produced;
/// it exists only so signatures match the real crate.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The additive constant of the SplitMix64 counter (the 64-bit golden ratio).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mix: a bijective finalizer turning a raw counter
/// value into a statistically solid 64-bit word.
///
/// Unlike a shift-register generator, a counter-mixed core has no
/// loop-carried data dependency between outputs: word `i` of a batch is
/// `split_mix64(base + i·GAMMA)`, so a refill loop runs at full
/// instruction-level parallelism.  This is the core behind the simulation
/// generator's batched refill.
#[inline]
#[must_use]
pub fn split_mix64(counter: u64) -> u64 {
    let mut z = counter;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed by expanding it with SplitMix64,
    /// mirroring `rand::SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the stand-in for sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as the real crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` (`span = 0` meaning the full 64-bit
/// range) with Lemire's nearly-divisionless multiply-shift method: one
/// 64×64→128 multiply per draw, with the single `%` confined to the rare
/// rejection path (probability `span / 2^64`).
///
/// This is the one shared core behind every bounded draw in the workspace:
/// `Rng::gen_range` integer impls and `SimRng::gen_index` delegate here, and
/// [`distributions::UniformIndex`] is its cached-threshold form for bounds
/// sampled many times.
#[inline]
pub fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let mut x = rng.next_u64();
    if span == 0 {
        return x;
    }
    let mut m = u128::from(x) * u128::from(span);
    let mut low = m as u64;
    if low < span {
        // Cold path: compute the rejection threshold 2^64 mod span and
        // redraw until the low half clears it, which makes the high half
        // exactly uniform on [0, span).
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Subtract on 64-bit two's-complement bit patterns: modulo
                // 2^64 the difference equals the true span for every range of
                // these types, including signed ranges with a negative start.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let offset = sample_below(rng, span) as $t;
                self.start.wrapping_add(offset)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                // An inclusive span of 2^64 wraps to 0, which `sample_below`
                // reads as "the full 64-bit range" — exactly right.
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let offset = sample_below(rng, span) as $t;
                start.wrapping_add(offset)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// Convenience methods layered on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12), but a
    /// fast, statistically solid generator with the same construction API and
    /// the same determinism guarantee.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: f64 = rng.gen_range(0.0..=0.5);
            assert!((0.0..=0.5).contains(&y));
        }
    }

    #[test]
    fn gen_range_handles_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut low = false;
        let mut high = false;
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: i8 = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&y));
            low |= y < -90;
            high |= y > 90;
        }
        assert!(
            low && high,
            "both ends of the signed span must be reachable"
        );
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_exclusive_range_panics_loudly() {
        // `sample_below` treats a span of 0 as "full 64-bit range" — a
        // convention only the *inclusive* impl may reach (0..=u64::MAX).
        // The exclusive impl must keep rejecting empty ranges before that
        // convention can misfire.
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(5..5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_inclusive_range_panics_loudly() {
        let mut rng = StdRng::seed_from_u64(1);
        #[allow(clippy::reversed_empty_ranges)]
        let _: u64 = rng.gen_range(6..=5);
    }

    #[test]
    fn full_inclusive_u64_range_is_supported() {
        // The one case whose span wraps to 0: must return raw words, not loop.
        let mut rng = StdRng::seed_from_u64(2);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(rng.gen_range(0..=u64::MAX));
        }
        assert!(distinct.len() > 60);
    }

    #[test]
    fn split_mix64_scrambles_sequential_counters() {
        use super::{split_mix64, GOLDEN_GAMMA};
        let words: Vec<u64> = (0..64)
            .map(|i| split_mix64((i as u64).wrapping_mul(GOLDEN_GAMMA)))
            .collect();
        // All distinct (the mix is bijective) and bit-balanced in aggregate.
        for (i, a) in words.iter().enumerate() {
            for b in &words[i + 1..] {
                assert_ne!(a, b);
            }
        }
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        let total = 64 * 64;
        assert!(
            (i64::from(ones) - i64::from(total) / 2).abs() < 200,
            "ones = {ones}"
        );
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
