//! Offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs/book/)
//! benchmarking crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] knobs
//! (`sample_size` / `warm_up_time` / `measurement_time`), `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain wall-clock
//! harness. Statistics are deliberately simple (mean ms/iter over a fixed
//! sample count); there is no outlier analysis, plotting or HTML report.
//!
//! Two environment variables drive the CI bench gate (see
//! `crates/bench/src/bin/bench_gate.rs`):
//!
//! * `BENCH_RESULTS_JSON=path` — append one JSON line per finished benchmark
//!   (`{"bench":"group/id","ms_per_iter":…,"iters":…}`) to `path`, so a
//!   `cargo bench` run accumulates a machine-readable summary across all
//!   bench targets (each target is a separate process, so the harness can
//!   only append — delete a stale file before a fresh accumulation).
//! * `CRITERION_SAMPLE_SIZE=k` — override every group's sample size with `k`
//!   (CI quick mode runs `k = 3` to keep the gate fast).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The CI quick-mode sample-size override, if `CRITERION_SAMPLE_SIZE` is set
/// to a positive integer.
fn sample_size_override() -> Option<u64> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()?
        .parse::<u64>()
        .ok()
        .filter(|&k| k > 0)
}

/// Appends one benchmark's summary as a JSON line to `$BENCH_RESULTS_JSON`,
/// if set.  Failures to write are reported on stderr but never fail the
/// benchmark itself.
fn append_json_record(group: &str, id: &str, ms_per_iter: f64, iters: u64) {
    let Ok(path) = std::env::var("BENCH_RESULTS_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let line = format!(
        "{{\"bench\":\"{group}/{id}\",\"ms_per_iter\":{ms_per_iter:.6},\"iters\":{iters}}}\n"
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: could not append bench result to {path}: {e}");
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, `name/param`.
    pub fn new<P: Display>(name: &str, param: P) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1) as u64;
        self
    }

    /// No-op kept for criterion API parity: the stand-in always runs a single
    /// untimed warm-up iteration regardless of the requested duration.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// No-op kept for criterion API parity: the stand-in always runs exactly
    /// `sample_size` timed iterations regardless of the requested duration.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // One untimed warm-up pass, then the timed pass.
        let mut warmup = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
        let iterations = sample_size_override().unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
        let ms_per_iter = per_iter as f64 / 1e6;
        println!(
            "bench {}/{}: {} iters, {:.3} ms/iter",
            self.name, id.id, bencher.iterations, ms_per_iter,
        );
        append_json_record(&self.name, &id.id, ms_per_iter, bencher.iterations);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function(BenchmarkId::from("single"), f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a named group runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that read or mutate the process-global environment
    /// variables the harness honours.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn group_runs_and_counts_iterations() {
        let _guard = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        // One warm-up iteration plus 3 timed iterations, run once each pass.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(99).id, "99");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(21) * 2, 42);
    }

    #[test]
    fn json_records_accumulate_in_the_results_file() {
        let _guard = ENV_LOCK.lock().unwrap();
        let path =
            std::env::temp_dir().join(format!("criterion-json-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BENCH_RESULTS_JSON", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("jsontest");
        group.sample_size(2);
        group.bench_function("unique_json_marker", |b| b.iter(|| 1 + 1));
        group.finish();
        std::env::remove_var("BENCH_RESULTS_JSON");

        let contents = std::fs::read_to_string(&path).expect("results file exists");
        let line = contents
            .lines()
            .find(|l| l.contains("jsontest/unique_json_marker"))
            .expect("our benchmark is recorded");
        assert!(line.contains("\"ms_per_iter\":"), "line = {line}");
        assert!(line.contains("\"iters\":2"), "line = {line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sample_size_env_override_wins() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("CRITERION_SAMPLE_SIZE", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("override");
        group.sample_size(50);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
        // One warm-up iteration plus 5 (not 50) timed iterations.
        assert_eq!(calls, 6);
    }
}
