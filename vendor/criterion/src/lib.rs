//! Offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs/book/)
//! benchmarking crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] knobs
//! (`sample_size` / `warm_up_time` / `measurement_time`), `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain wall-clock
//! harness. Statistics are deliberately simple (mean ms/iter over a fixed
//! sample count); there is no outlier analysis, plotting or HTML report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, `name/param`.
    pub fn new<P: Display>(name: &str, param: P) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1) as u64;
        self
    }

    /// No-op kept for criterion API parity: the stand-in always runs a single
    /// untimed warm-up iteration regardless of the requested duration.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// No-op kept for criterion API parity: the stand-in always runs exactly
    /// `sample_size` timed iterations regardless of the requested duration.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // One untimed warm-up pass, then the timed pass.
        let mut warmup = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
        println!(
            "bench {}/{}: {} iters, {:.3} ms/iter",
            self.name,
            id.id,
            bencher.iterations,
            per_iter as f64 / 1e6,
        );
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function(BenchmarkId::from("single"), f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a named group runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        // One warm-up iteration plus 3 timed iterations, run once each pass.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(99).id, "99");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(21) * 2, 42);
    }
}
