//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/proptest/)
//! crate.
//!
//! Implements the subset of the proptest API that this workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait over ranges, tuples,
//! [`Just`](strategy::Just), [`prop_oneof!`], [`collection::vec`] and
//! [`option::of`]; the [`proptest!`] test-harness macro with
//! `#![proptest_config(..)]`; and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (per test name, per attempt index) and failing inputs
//! are **not shrunk** — the failing case's values are printed instead. That
//! is a deliberate trade for zero dependencies; the tests themselves are
//! source-compatible with the real proptest. As in the real crate,
//! `prop_assume!` rejections are regenerated (they do not consume the case
//! budget) and the run fails if the reject cap is exceeded.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration ([`ProptestConfig`](test_runner::ProptestConfig)).
pub mod test_runner {
    /// Controls how many random cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — skipped, not a failure.
        Reject,
        /// An assertion failed with the given message.
        Fail(String),
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among several strategies of the same type
    /// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Creates a union over `options`; must be non-empty.
        #[must_use]
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Option`s of values from an inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` half the time and `Some` of the inner strategy's
    /// value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property-test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic per-test, per-attempt RNG seed (FNV-1a over the test name,
/// mixed with the attempt index).
#[must_use]
pub fn attempt_seed(test_name: &str, attempt: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ (attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Uniform choice among strategy expressions of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing case
/// instead of unwinding through the generator loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when its generated inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                use $crate::__rand::SeedableRng as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                // Rejected cases (prop_assume!) are regenerated from fresh
                // seeds rather than counted against the case budget, so every
                // property really runs `config.cases` accepted inputs — as in
                // the real proptest, a global reject cap bounds the retries.
                let max_rejects: u64 = u64::from(config.cases).saturating_mul(16).max(1_024);
                let mut accepted: u32 = 0;
                let mut rejected: u64 = 0;
                let mut attempt: u64 = 0;
                while accepted < config.cases {
                    let seed = $crate::attempt_seed(stringify!($name), attempt);
                    attempt += 1;
                    let mut proptest_rng = $crate::__rand::rngs::StdRng::seed_from_u64(seed);
                    $(let $arg = ($strategy).generate(&mut proptest_rng);)+
                    let values = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {
                            accepted += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= max_rejects,
                                "property `{}`: too many prop_assume! rejections \
                                 ({} rejects while reaching {} of {} cases) — \
                                 loosen the assumption or the input strategies",
                                stringify!($name), rejected, accepted, config.cases,
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {} (seed {}):\n{}\ninputs: {}",
                                stringify!($name), accepted, seed, msg, values,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()); $($rest)*);
    };
}
