//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! No serialization format ships with this workspace (reports are rendered by
//! hand as markdown/CSV in `analysis::tables`), so `Serialize` and
//! `Deserialize` are marker traits: deriving them records the intent — the
//! type is plain data safe to serialize — and keeps the source compatible
//! with the real serde for the day the workspace gains registry access.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn primitives_are_marked() {
        assert_serialize::<u64>();
        assert_serialize::<Vec<String>>();
        assert_serialize::<Option<f64>>();
        assert_deserialize::<Vec<Vec<String>>>();
    }
}
