//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate defines `Serialize` / `Deserialize` as marker
//! traits (no actual serialization format ships with this workspace), so the
//! derive macros only need to locate the type name and emit the two marker
//! impls. Plain structs and enums, with or without simple generic parameters,
//! are supported; that covers every derive site in the workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generics)` from a struct/enum/union definition, where
/// `generics` is the parameter list verbatim, e.g. `<T, 'a>`, or empty.
fn type_header(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected a type name after `{kw}`, found {other:?}"),
                };
                let mut generics = String::new();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        let mut depth = 0i32;
                        for t in tokens.by_ref() {
                            let s = t.to_string();
                            if s == "<" {
                                depth += 1;
                            } else if s == ">" {
                                depth -= 1;
                            }
                            generics.push_str(&s);
                            generics.push(' ');
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                }
                return (name, generics);
            }
        }
    }
    panic!("serde derive: input is not a struct, enum or union");
}

/// Strips bounds and defaults from a generic parameter list so it can be used
/// at the type position: `<T: Clone, 'a>` becomes `<T, 'a>`.
fn generics_as_args(generics: &str) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = generics
        .trim()
        .trim_start_matches('<')
        .trim_end_matches('>');
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                args.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        args.push(current);
    }
    let names: Vec<String> = args
        .iter()
        .map(|a| a.split(':').next().unwrap_or("").trim().to_string())
        .collect();
    format!("<{}>", names.join(", "))
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_header(input);
    let args = generics_as_args(&generics);
    format!("impl {generics} ::serde::Serialize for {name} {args} {{}}")
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = type_header(input);
    let args = generics_as_args(&generics);
    let impl_generics = if generics.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}", generics.trim().trim_start_matches('<'))
    };
    format!("impl {impl_generics} ::serde::Deserialize<'de> for {name} {args} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
