//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync` primitives.
//!
//! Only the API surface this workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with parking_lot's signature style — `lock()` returns the guard
//! directly and `into_inner()` returns the value directly, with lock poisoning
//! converted to a panic (parking_lot has no poisoning; a poisoned std lock
//! means a worker already panicked, so propagating the panic is faithful).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("mutex poisoned: a holder panicked")
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("mutex poisoned: a holder panicked")
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .expect("mutex poisoned: a holder panicked")
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .expect("rwlock poisoned: a holder panicked")
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .expect("rwlock poisoned: a holder panicked")
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("rwlock poisoned: a holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4_000);
    }
}
