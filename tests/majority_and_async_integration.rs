//! Integration tests for the majority-consensus protocol (Corollary 2.18) and
//! the clockless variants (Theorem 3.1).

use breathe::{
    AsyncBroadcastProtocol, AsyncVariant, InitialSet, MajorityConsensusProtocol, Params,
};
use flip_model::Opinion;

#[test]
fn majority_consensus_follows_the_initial_majority_not_the_label() {
    let params = Params::practical(400, 0.3).unwrap();
    for correct in Opinion::ALL {
        let initial = InitialSet::new(90, 30);
        let protocol = MajorityConsensusProtocol::new(params.clone(), correct, initial).unwrap();
        let outcome = protocol.run_with_seed(17).unwrap();
        assert!(
            outcome.fraction_correct > 0.9,
            "correct={correct}: fraction = {}",
            outcome.fraction_correct
        );
    }
}

#[test]
fn majority_consensus_improves_with_set_size_and_bias() {
    let params = Params::practical(600, 0.3).unwrap();
    let weak = InitialSet::with_bias(40, 0.05).unwrap();
    let strong = InitialSet::with_bias(300, 0.3).unwrap();
    let run = |initial: InitialSet| {
        let protocol =
            MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial).unwrap();
        let mut total = 0.0;
        for seed in 0..5 {
            total += protocol.run_with_seed(seed).unwrap().fraction_correct;
        }
        total / 5.0
    };
    let weak_fraction = run(weak);
    let strong_fraction = run(strong);
    assert!(
        strong_fraction >= weak_fraction,
        "strong {strong_fraction} vs weak {weak_fraction}"
    );
    assert!(strong_fraction > 0.95, "strong = {strong_fraction}");
}

#[test]
fn majority_consensus_message_budget_matches_the_broadcast_budget_shape() {
    let params = Params::practical(500, 0.3).unwrap();
    let initial = InitialSet::with_bias(100, 0.25).unwrap();
    let protocol = MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial).unwrap();
    let outcome = protocol.run_with_seed(1).unwrap();
    let scale = 500.0 * (500f64).ln() / (0.3 * 0.3);
    assert!(outcome.messages_sent as f64 / scale < 200.0);
    assert!(outcome.total_rounds <= params.total_rounds());
}

#[test]
fn bounded_offset_broadcast_reaches_consensus_with_large_skew() {
    let params = Params::practical(400, 0.3).unwrap();
    let d = 2 * (400f64).log2().ceil() as u64;
    let protocol = AsyncBroadcastProtocol::new(
        params,
        Opinion::One,
        AsyncVariant::BoundedOffsets { max_offset: d },
    );
    let outcome = protocol.run_with_seed(9).unwrap();
    assert!(outcome.fraction_correct > 0.95, "{outcome:?}");
    // Overhead is (#phases - 1 + 1) * D, i.e. polylogarithmic, far below the
    // synchronous runtime for these parameters.
    assert!(outcome.overhead_rounds() < outcome.synchronous_rounds);
}

#[test]
fn resynchronised_broadcast_reaches_consensus_without_any_clock_assumption() {
    let params = Params::practical(400, 0.3).unwrap();
    let protocol = AsyncBroadcastProtocol::new(params, Opinion::Zero, AsyncVariant::Resynchronised);
    let outcome = protocol.run_with_seed(13).unwrap();
    assert!(outcome.fraction_correct > 0.95, "{outcome:?}");
}

#[test]
fn async_overhead_grows_slower_than_the_synchronous_runtime() {
    // Theorem 3.1: total = O(log n / eps^2 + log^2 n).  As n grows with eps
    // fixed, the relative overhead should stay bounded (both terms are Theta(log n)
    // up to the extra log factor).
    let epsilon = 0.3;
    let mut relative = Vec::new();
    for &n in &[200usize, 400, 800] {
        let params = Params::practical(n, epsilon).unwrap();
        let d = 2 * (n as f64).log2().ceil() as u64;
        let protocol = AsyncBroadcastProtocol::new(
            params,
            Opinion::One,
            AsyncVariant::BoundedOffsets { max_offset: d },
        );
        let outcome = protocol.run_with_seed(3).unwrap();
        relative.push(outcome.overhead_rounds() as f64 / outcome.synchronous_rounds as f64);
    }
    for r in &relative {
        assert!(*r < 1.5, "relative overhead too large: {relative:?}");
    }
}
