//! Smoke tests: every experiment entrypoint behind the `e01`–`e12`,
//! `ablations` and `full_report` binaries runs end-to-end at a tiny scale
//! and produces a well-formed, non-empty table.  Every entrypoint is a
//! registry-backed sweep spec (`experiments::specs`); the binaries are thin
//! wrappers over the same functions exercised here.
//!
//! The point is rot prevention, not statistics — a binary whose inner
//! function panics, loops or returns an empty table fails here within
//! seconds instead of rotting silently until someone runs `cargo run`.

use analysis::Table;
use experiments::ExperimentConfig;

/// The smallest configuration every entrypoint accepts: one trial per point,
/// quick-mode grids.
fn smoke_config() -> ExperimentConfig {
    ExperimentConfig {
        trials: 1,
        base_seed: 0x0005_40CE,
        ..ExperimentConfig::quick()
    }
}

/// A table is well-formed when it has a title, at least one column and at
/// least one row, and every row matches the column count.
fn assert_well_formed(table: &Table) {
    assert!(!table.title().is_empty(), "table has an empty title");
    assert!(
        !table.columns().is_empty(),
        "table `{}` has no columns",
        table.title()
    );
    assert!(
        !table.is_empty(),
        "table `{}` produced no rows",
        table.title()
    );
    for row in table.rows() {
        assert_eq!(
            row.len(),
            table.columns().len(),
            "table `{}` has a ragged row",
            table.title()
        );
    }
    let markdown = table.to_markdown();
    assert!(markdown.contains(table.title()));
}

#[test]
fn e01_rounds_vs_n_smoke() {
    assert_well_formed(&experiments::specs::e01_table(&smoke_config()));
}

#[test]
fn e02_rounds_vs_epsilon_smoke() {
    assert_well_formed(&experiments::specs::e02_table(&smoke_config()));
}

#[test]
fn e03_message_complexity_smoke() {
    assert_well_formed(&experiments::specs::e03_table(&smoke_config()));
}

#[test]
fn e04_phase0_seeding_smoke() {
    assert_well_formed(&experiments::specs::e04_table(&smoke_config()));
}

#[test]
fn e05_layer_growth_smoke() {
    assert_well_formed(&experiments::specs::e05_table(&smoke_config()));
}

#[test]
fn e06_bias_decay_smoke() {
    assert_well_formed(&experiments::specs::e06_table(&smoke_config()));
}

#[test]
fn e07_stage2_boost_smoke() {
    let tables = [
        experiments::specs::e07a_table(&smoke_config()),
        experiments::specs::e07b_table(&smoke_config()),
    ];
    for table in &tables {
        assert_well_formed(table);
    }
}

#[test]
fn e08_majority_consensus_smoke() {
    assert_well_formed(&experiments::specs::e08_table(&smoke_config()));
}

#[test]
fn e09_async_overhead_smoke() {
    assert_well_formed(&experiments::specs::e09_table(&smoke_config()));
}

#[test]
fn e10_baseline_comparison_smoke() {
    assert_well_formed(&experiments::specs::e10_table(&smoke_config()));
}

#[test]
fn e11_path_deterioration_smoke() {
    assert_well_formed(&experiments::specs::e11_table(&smoke_config()));
}

#[test]
fn e12_two_party_lower_bound_smoke() {
    assert_well_formed(&experiments::specs::e12_table(&smoke_config()));
}

#[test]
fn ablations_smoke() {
    let tables = [
        experiments::specs::a1_table(&smoke_config()),
        experiments::specs::a2_table(&smoke_config()),
        experiments::specs::a3_table(&smoke_config()),
    ];
    for table in &tables {
        assert_well_formed(table);
    }
}

#[test]
fn full_report_smoke() {
    // The `full_report` binary stitches every experiment into one document.
    let report = experiments::report::full_report(&smoke_config());
    assert!(!report.tables().is_empty(), "report has no tables");
    for table in report.tables() {
        assert_well_formed(table);
    }
    let markdown = report.to_markdown();
    for table in report.tables() {
        assert!(
            markdown.contains(table.title()),
            "report markdown is missing table `{}`",
            table.title()
        );
    }
}

#[test]
fn config_from_args_matches_binary_convention() {
    // The binaries all parse flags through this helper; pin its contract.
    let quick = experiments::config_from_args(std::iter::empty::<String>());
    assert!(quick.quick);
    let full = experiments::config_from_args(["--full".to_string()]);
    assert!(!full.quick);
    assert!(full.trials > quick.trials);
}

#[test]
fn experiments_are_deterministic_for_a_fixed_seed() {
    // Two runs of the same entrypoint with the same config must be
    // byte-identical; this is the property that makes the e01–e12 binaries
    // reproducible report generators rather than one-off samples.
    let first = experiments::specs::e01_table(&smoke_config());
    let second = experiments::specs::e01_table(&smoke_config());
    assert_eq!(first.to_csv(), second.to_csv());
}
