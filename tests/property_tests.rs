//! Property-based tests (proptest) of the core data structures and invariants:
//! the gossip scheduler, the noise channel, the phase schedule, the Stage I/II
//! state machines, the population census and the dense (counts/bitmap)
//! population representations.

use breathe::{Params, Position, Schedule, Stage1State, Stage2State};
use flip_model::{
    majority_bias, BinarySymmetricChannel, Census, Channel, DensePopulation, GossipScheduler,
    Opinion, OpinionBitmap, RumorProtocol, SimRng,
};
use proptest::prelude::*;

fn arb_opinion() -> impl Strategy<Value = Opinion> {
    prop_oneof![Just(Opinion::Zero), Just(Opinion::One)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------------------------------------------------------- scheduler

    /// Every sent message is either accepted or counted as a collision, no
    /// recipient accepts more than one message, and nobody delivers to itself.
    #[test]
    fn scheduler_conserves_messages(
        n in 2usize..40,
        senders in proptest::collection::vec((0usize..40, arb_opinion()), 0..60),
        seed in 0u64..1_000,
    ) {
        let senders: Vec<(u32, Opinion)> = senders
            .into_iter()
            .map(|(s, op)| ((s % n) as u32, op))
            .collect();
        let mut scheduler = GossipScheduler::new(n).unwrap();
        let mut rng = SimRng::from_seed(seed);
        let routing = scheduler.route(&senders, &mut rng);

        prop_assert_eq!(routing.sent as usize, senders.len());
        prop_assert_eq!(
            routing.sent,
            routing.accepted().len() as u64 + routing.collided
        );
        let mut seen = vec![0u32; n];
        for delivery in routing.accepted() {
            prop_assert_ne!(delivery.sender.index(), delivery.recipient.index());
            seen[delivery.recipient.index()] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c <= 1));
    }

    // ------------------------------------------------------------------ channel

    /// A channel never invents new symbols and flips at a rate consistent with
    /// its crossover probability (within generous statistical slack).
    #[test]
    fn channel_flip_rate_is_consistent(crossover in 0.0f64..=0.5, seed in 0u64..500) {
        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let mut rng = SimRng::from_seed(seed);
        let trials = 2_000u32;
        let flips = (0..trials)
            .filter(|_| channel.transmit(Opinion::One, &mut rng) == Opinion::Zero)
            .count() as f64;
        let rate = flips / f64::from(trials);
        prop_assert!((rate - crossover).abs() < 0.06);
        prop_assert!((channel.epsilon() - (0.5 - crossover)).abs() < 1e-12);
    }

    // ----------------------------------------------------------------- schedule

    /// Every round of a broadcast schedule belongs to exactly one phase, phases
    /// are visited in order, and the shifted schedule covers the same rounds
    /// plus gaps of exactly `d` between consecutive phase windows.
    #[test]
    fn schedule_positions_partition_time(
        n in 64usize..2_000,
        eps_milli in 120u32..450,
        d in 0u64..20,
    ) {
        let epsilon = f64::from(eps_milli) / 1_000.0;
        prop_assume!(epsilon >= 1.0 / (n as f64).sqrt());
        let params = Params::practical(n, epsilon).unwrap();
        let schedule = Schedule::broadcast(&params);

        let mut active = 0u64;
        let mut waiting = 0u64;
        let mut last_phase = 0usize;
        for t in 0..schedule.shifted_total_rounds(d) {
            match schedule.shifted_position(t, d) {
                Position::Active { phase, .. } => {
                    prop_assert!(phase >= last_phase);
                    last_phase = phase;
                    active += 1;
                }
                Position::Waiting { .. } => waiting += 1,
                Position::Done => {}
            }
        }
        prop_assert_eq!(active, schedule.total_rounds());
        prop_assert_eq!(waiting, d * (schedule.phase_count() as u64 - 1));
    }

    /// Parameter derivations respect the paper's structural constraints.
    #[test]
    fn params_derived_quantities_are_well_formed(
        n in 64usize..50_000,
        eps_milli in 60u32..500,
    ) {
        let epsilon = f64::from(eps_milli) / 1_000.0;
        prop_assume!(epsilon >= 1.0 / (n as f64).sqrt());
        let params = Params::practical(n, epsilon).unwrap();
        prop_assert_eq!(params.gamma() % 2, 1);
        prop_assert_eq!(params.final_samples() % 2, 1);
        prop_assert_eq!(params.boost_phase_len(), 2 * params.gamma());
        prop_assert_eq!(params.final_phase_len(), 2 * params.final_samples());
        prop_assert_eq!(
            params.total_rounds(),
            params.stage1_rounds() + params.stage2_rounds()
        );
        let schedule = Schedule::broadcast(&params);
        prop_assert_eq!(schedule.total_rounds(), params.total_rounds());
        prop_assert_eq!(
            schedule.spreading_phase_count(),
            params.stage1_intermediate_phases() + 2
        );
        // The majority-consensus entry phase is always within the schedule.
        for &set in &[1usize, 10, n / 2 + 1, n] {
            prop_assert!(params.majority_start_phase(set) <= params.stage1_intermediate_phases() + 1);
        }
    }

    // ------------------------------------------------------------------ stage I

    /// A Stage I agent adopts an opinion it actually heard during its
    /// activation phase, never speaks before its activation phase ends, and
    /// never changes its mind afterwards.
    #[test]
    fn stage1_adopts_only_heard_opinions(
        deliveries in proptest::collection::vec((0usize..6, arb_opinion()), 1..40),
        seed in 0u64..1_000,
    ) {
        let mut rng = SimRng::from_seed(seed);
        let mut state = Stage1State::uninformed();
        let mut sorted = deliveries.clone();
        sorted.sort_by_key(|(phase, _)| *phase);
        let activation_phase = sorted[0].0;
        let heard_in_activation: Vec<Opinion> = sorted
            .iter()
            .filter(|(phase, _)| *phase == activation_phase)
            .map(|(_, op)| *op)
            .collect();

        for phase in 0..=6usize {
            for (p, op) in &sorted {
                if *p == phase {
                    state.deliver(phase, *op, &mut rng);
                }
            }
            state.end_phase(phase);
        }

        prop_assert_eq!(state.level(), Some(activation_phase));
        let adopted = state.initial_opinion().unwrap();
        prop_assert!(heard_in_activation.contains(&adopted));
        // Never speaks during or before its activation phase.
        for phase in 0..=activation_phase {
            prop_assert_eq!(state.send(phase), None);
        }
        prop_assert_eq!(state.send(activation_phase + 1), Some(adopted));
    }

    // ----------------------------------------------------------------- stage II

    /// A successful Stage II agent adopts the majority of a subset of what it
    /// received: if the received messages are unanimous the new opinion matches
    /// them, and an unsuccessful agent never changes its opinion.
    #[test]
    fn stage2_end_phase_respects_received_messages(
        prior in proptest::option::of(arb_opinion()),
        unanimous in arb_opinion(),
        received in 0u64..60,
        seed in 0u64..1_000,
    ) {
        let mut rng = SimRng::from_seed(seed);
        let mut state = Stage2State::new();
        state.adopt(prior);
        for _ in 0..received {
            state.deliver(unanimous);
        }
        let phase_len = 40;
        let samples = 11;
        let successful = state.end_phase(phase_len, samples, &mut rng);
        if successful {
            prop_assert!(received >= phase_len / 2);
            prop_assert_eq!(state.opinion(), Some(unanimous));
        } else {
            prop_assert_eq!(state.opinion(), prior);
        }
        // Counters always reset.
        prop_assert_eq!(state.received_in_phase(), 0);
    }

    // ------------------------------------------------------------------- census

    /// Census counts are consistent with the majority-bias definition.
    #[test]
    fn census_and_majority_bias_are_consistent(zeros in 0usize..500, ones in 0usize..500) {
        let n = zeros + ones + 3;
        let census = Census::from_counts(zeros, ones, n);
        prop_assert_eq!(census.active(), zeros + ones);
        prop_assert_eq!(census.holding(Opinion::Zero), zeros);
        prop_assert_eq!(census.holding(Opinion::One), ones);
        let frac = census.fraction_correct(Opinion::One);
        prop_assert!((0.0..=1.0).contains(&frac));
        match census.majority() {
            Some(Opinion::One) => prop_assert!(ones > zeros),
            Some(Opinion::Zero) => prop_assert!(zeros > ones),
            None => prop_assert_eq!(zeros, ones),
        }
        let bias = majority_bias(ones.max(zeros), ones.min(zeros));
        prop_assert!((0.0..=0.5).contains(&bias));
    }

    // ------------------------------------------------------ dense population

    /// The dense counts representation and the bit-packed bitmap agree with
    /// `Census::from_counts` for every split of a population into zeros, ones
    /// and undecided agents (`zeros + ones <= n`).
    #[test]
    fn dense_population_and_bitmap_census_match_counts(
        zeros in 0u64..300,
        ones in 0u64..300,
        undecided in 0u64..300,
    ) {
        let n = zeros + ones + undecided;
        prop_assume!(n >= 2);
        let expected = Census::from_counts(zeros as usize, ones as usize, n as usize);

        // Counts path: state layout [undecided, zeros, ones] (RumorProtocol).
        let population = RumorProtocol::population(n, zeros, ones);
        prop_assert_eq!(population.n(), n);
        prop_assert_eq!(population.counts().iter().sum::<u64>(), n);
        let census = population.census(&RumorProtocol);
        prop_assert_eq!(census, expected);
        prop_assert!(census.active() <= census.population());
        prop_assert_eq!(census.active() as u64, zeros + ones);

        // Bitmap path: lay the same split out agent by agent.
        let mut bitmap = OpinionBitmap::new(n as usize);
        prop_assert_eq!(bitmap.len() as u64, n);
        for i in 0..zeros {
            bitmap.set(i as usize, Some(Opinion::Zero));
        }
        for i in zeros..zeros + ones {
            bitmap.set(i as usize, Some(Opinion::One));
        }
        prop_assert_eq!(bitmap.census(), expected);

        // Round-trip through from_bitmap reproduces the same counts.
        let rebuilt = DensePopulation::from_bitmap(&bitmap, 3, |op| match op {
            None => 0,
            Some(Opinion::Zero) => 1,
            Some(Opinion::One) => 2,
        }).unwrap();
        prop_assert_eq!(&rebuilt, &population);
    }

    /// Bitmap get/set round-trips for arbitrary per-agent assignments,
    /// including overwrites and deactivation, and the census tracks exactly
    /// the surviving assignments.
    #[test]
    fn bitmap_get_set_round_trips(
        n in 2usize..200,
        writes in proptest::collection::vec(
            (0usize..200, proptest::option::of(prop_oneof![Just(Opinion::Zero), Just(Opinion::One)])),
            0..64,
        ),
    ) {
        let mut bitmap = OpinionBitmap::new(n);
        let mut reference = vec![None; n];
        for (idx, op) in writes {
            let idx = idx % n;
            bitmap.set(idx, op);
            reference[idx] = op;
        }
        for (idx, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(bitmap.get(idx), expected);
        }
        let zeros = reference.iter().filter(|o| **o == Some(Opinion::Zero)).count();
        let ones = reference.iter().filter(|o| **o == Some(Opinion::One)).count();
        prop_assert_eq!(bitmap.census(), Census::from_counts(zeros, ones, n));
        prop_assert!(zeros + ones <= n, "undecided agents are representable");
    }
}
