//! The radix-vs-single-pass routing equivalence contract at scale.
//!
//! `GossipScheduler` routes large dense rounds through a cache-bucketed
//! radix path and everything else through the single-pass path; the
//! crossover is purely a performance decision, so the two paths must be
//! *bit-identical* from equal RNG states — same deliveries, same emission
//! order (recipient order for dense rounds, first-arrival order for sparse
//! ones), same collision counts, same RNG stream afterwards.  This suite
//! pins that contract at n ∈ {10³, 10⁵, 10⁶} (spanning both sides of the
//! `RADIX_MIN_N` crossover) for all-send, sparse and single-message
//! rounds, and checks `route_into`'s dispatch matches both explicit paths
//! exactly at the crossover boundary.

use breathe_paper as _;
use flip_model::{GossipScheduler, Opinion, RoundRouting, SimRng, RADIX_MIN_N};
use rand::RngCore;

/// Routes `sends` through both paths from equal RNG states for several
/// rounds, asserting routing outcome and RNG stream stay identical.
fn assert_paths_agree(n: usize, sends: &[(u32, Opinion)], seed: u64, rounds: usize) {
    let mut single = GossipScheduler::new(n).expect("valid population");
    let mut radix = GossipScheduler::new(n).expect("valid population");
    let mut rng_single = SimRng::from_seed(seed);
    let mut rng_radix = SimRng::from_seed(seed);
    let mut out_single = RoundRouting::with_capacity(n);
    let mut out_radix = RoundRouting::with_capacity(n);
    for round in 0..rounds {
        single.route_into_single_pass(sends, &mut rng_single, &mut out_single);
        radix.route_into_radix(sends, &mut rng_radix, &mut out_radix);
        assert_eq!(
            out_single.sent, out_radix.sent,
            "n = {n}, round {round}: sent diverged"
        );
        assert_eq!(
            out_single.collided, out_radix.collided,
            "n = {n}, round {round}: collided diverged"
        );
        assert_eq!(
            out_single.accepted(),
            out_radix.accepted(),
            "n = {n}, round {round}: accepted deliveries diverged"
        );
        assert_eq!(
            rng_single.next_u64(),
            rng_radix.next_u64(),
            "n = {n}, round {round}: RNG streams diverged"
        );
    }
}

#[test]
fn radix_and_single_pass_agree_at_1e3() {
    let n = 1_000;
    let all: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(11)
        .map(|i| (i, Opinion::One))
        .collect();
    assert_paths_agree(n, &all, 0xA11, 8);
    assert_paths_agree(n, &sparse, 0xA12, 8);
    assert_paths_agree(n, &[(0u32, Opinion::One)], 0xA13, 50);
}

#[test]
fn radix_and_single_pass_agree_at_1e5() {
    let n = 100_000;
    let all: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(13)
        .map(|i| (i, Opinion::Zero))
        .collect();
    assert_paths_agree(n, &all, 0xB11, 3);
    assert_paths_agree(n, &sparse, 0xB12, 3);
}

#[test]
fn radix_and_single_pass_agree_at_1e6() {
    let n = 1_000_000;
    let all: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 5 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(17)
        .map(|i| (i, Opinion::One))
        .collect();
    assert_paths_agree(n, &all, 0xC11, 2);
    assert_paths_agree(n, &sparse, 0xC12, 2);
}

#[test]
fn crossover_straddles_identically() {
    // One agent below and one agent at the crossover: `route_into` switches
    // paths between these two sizes, and both must match their explicit
    // counterparts exactly.
    for n in [RADIX_MIN_N - 1, RADIX_MIN_N] {
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
        let mut dispatched = GossipScheduler::new(n).expect("valid");
        let mut single = GossipScheduler::new(n).expect("valid");
        let mut radix = GossipScheduler::new(n).expect("valid");
        let mut rng_d = SimRng::from_seed(99);
        let mut rng_s = SimRng::from_seed(99);
        let mut rng_r = SimRng::from_seed(99);
        let mut out_d = RoundRouting::with_capacity(n);
        let mut out_s = RoundRouting::with_capacity(n);
        let mut out_r = RoundRouting::with_capacity(n);
        for _ in 0..2 {
            dispatched.route_into(&sends, &mut rng_d, &mut out_d);
            single.route_into_single_pass(&sends, &mut rng_s, &mut out_s);
            radix.route_into_radix(&sends, &mut rng_r, &mut out_r);
            assert_eq!(out_d.accepted(), out_s.accepted(), "n = {n}");
            assert_eq!(out_d.accepted(), out_r.accepted(), "n = {n}");
        }
    }
}
