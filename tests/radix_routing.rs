//! The radix-vs-single-pass routing equivalence contract at scale.
//!
//! `GossipScheduler` routes large dense rounds through a cache-bucketed
//! radix path and everything else through the single-pass path; the
//! crossover is purely a performance decision, so the two paths must be
//! *bit-identical* from equal RNG states — same deliveries, same emission
//! order (recipient order for dense rounds, first-arrival order for sparse
//! ones), same collision counts, same RNG stream afterwards.  This suite
//! pins that contract at n ∈ {10³, 10⁵, 10⁶} (spanning both sides of the
//! `RADIX_MIN_N` crossover) for all-send, sparse and single-message
//! rounds, and checks `route_into`'s dispatch matches both explicit paths
//! exactly at the crossover boundary.
//!
//! The second half of the suite pins the *thread-invariance* contract: the
//! parallel router (`route_into_parallel` over a `RoundPool`) must be
//! bit-identical to **both** sequential paths — deliveries, counts, and the
//! post-round RNG stream — for every pool width in {1, 2, 3, 8}, at every
//! population in {10³, 10⁵, `RADIX_MIN_N`, 10⁶}, for dense and sparse
//! rounds alike; and a whole `Simulation` configured with any thread count
//! must reproduce the single-threaded run census-for-census.

use breathe_paper as _;
use flip_model::{
    BinarySymmetricChannel, FaultSpec, GossipScheduler, HybridSimulation, Opinion, RoundPool,
    RoundRouting, RumorAgent, RumorProtocol, SimRng, Simulation, SimulationConfig,
    StratifiedPopulation, RADIX_MIN_N,
};
use rand::RngCore;

/// Routes `sends` through both paths from equal RNG states for several
/// rounds, asserting routing outcome and RNG stream stay identical.
fn assert_paths_agree(n: usize, sends: &[(u32, Opinion)], seed: u64, rounds: usize) {
    let mut single = GossipScheduler::new(n).expect("valid population");
    let mut radix = GossipScheduler::new(n).expect("valid population");
    let mut rng_single = SimRng::from_seed(seed);
    let mut rng_radix = SimRng::from_seed(seed);
    let mut out_single = RoundRouting::with_capacity(n);
    let mut out_radix = RoundRouting::with_capacity(n);
    for round in 0..rounds {
        single.route_into_single_pass(sends, &mut rng_single, &mut out_single);
        radix.route_into_radix(sends, &mut rng_radix, &mut out_radix);
        assert_eq!(
            out_single.sent, out_radix.sent,
            "n = {n}, round {round}: sent diverged"
        );
        assert_eq!(
            out_single.collided, out_radix.collided,
            "n = {n}, round {round}: collided diverged"
        );
        assert_eq!(
            out_single.accepted(),
            out_radix.accepted(),
            "n = {n}, round {round}: accepted deliveries diverged"
        );
        assert_eq!(
            rng_single.next_u64(),
            rng_radix.next_u64(),
            "n = {n}, round {round}: RNG streams diverged"
        );
    }
}

#[test]
fn radix_and_single_pass_agree_at_1e3() {
    let n = 1_000;
    let all: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(11)
        .map(|i| (i, Opinion::One))
        .collect();
    assert_paths_agree(n, &all, 0xA11, 8);
    assert_paths_agree(n, &sparse, 0xA12, 8);
    assert_paths_agree(n, &[(0u32, Opinion::One)], 0xA13, 50);
}

#[test]
fn radix_and_single_pass_agree_at_1e5() {
    let n = 100_000;
    let all: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(13)
        .map(|i| (i, Opinion::Zero))
        .collect();
    assert_paths_agree(n, &all, 0xB11, 3);
    assert_paths_agree(n, &sparse, 0xB12, 3);
}

#[test]
fn radix_and_single_pass_agree_at_1e6() {
    let n = 1_000_000;
    let all: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 5 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(17)
        .map(|i| (i, Opinion::One))
        .collect();
    assert_paths_agree(n, &all, 0xC11, 2);
    assert_paths_agree(n, &sparse, 0xC12, 2);
}

/// Routes `sends` through the parallel router (pool of `workers` lanes) and
/// both sequential paths from equal RNG states for several rounds, asserting
/// deliveries, counts and the post-round RNG stream stay identical.
fn assert_parallel_agrees(
    n: usize,
    sends: &[(u32, Opinion)],
    seed: u64,
    rounds: usize,
    workers: usize,
) {
    let pool = RoundPool::new(workers);
    let mut parallel = GossipScheduler::new(n).expect("valid population");
    let mut single = GossipScheduler::new(n).expect("valid population");
    let mut radix = GossipScheduler::new(n).expect("valid population");
    let mut rng_p = SimRng::from_seed(seed);
    let mut rng_s = SimRng::from_seed(seed);
    let mut rng_r = SimRng::from_seed(seed);
    let mut out_p = RoundRouting::with_capacity(n);
    let mut out_s = RoundRouting::with_capacity(n);
    let mut out_r = RoundRouting::with_capacity(n);
    for round in 0..rounds {
        parallel.route_into_parallel(sends, &mut rng_p, &mut out_p, &pool);
        single.route_into_single_pass(sends, &mut rng_s, &mut out_s);
        radix.route_into_radix(sends, &mut rng_r, &mut out_r);
        let ctx = format!("n = {n}, workers = {workers}, round {round}");
        assert_eq!(out_p.sent, out_s.sent, "{ctx}: sent diverged");
        assert_eq!(out_p.collided, out_s.collided, "{ctx}: collided diverged");
        assert_eq!(
            out_p.accepted(),
            out_s.accepted(),
            "{ctx}: deliveries diverged from single-pass"
        );
        assert_eq!(
            out_p.accepted(),
            out_r.accepted(),
            "{ctx}: deliveries diverged from sequential radix"
        );
        assert_eq!(
            rng_p.next_u64(),
            rng_s.next_u64(),
            "{ctx}: RNG streams diverged"
        );
        rng_r.next_u64(); // keep the radix stream in lock-step too
    }
}

/// The `sends` patterns the thread matrix exercises: a dense all-send round
/// and a sparse round (~n/13 senders).
fn dense_and_sparse(n: usize) -> [Vec<(u32, Opinion)>; 2] {
    let dense: Vec<(u32, Opinion)> = (0..n as u32)
        .map(|i| (i, Opinion::from_bit(u8::from(i % 3 == 0))))
        .collect();
    let sparse: Vec<(u32, Opinion)> = (0..n as u32)
        .step_by(13)
        .map(|i| (i, Opinion::One))
        .collect();
    [dense, sparse]
}

#[test]
fn parallel_routing_is_thread_invariant_at_1e3() {
    for sends in &dense_and_sparse(1_000) {
        for workers in [1, 2, 3, 8] {
            assert_parallel_agrees(1_000, sends, 0xD11, 6, workers);
        }
    }
}

#[test]
fn parallel_routing_is_thread_invariant_at_1e5() {
    for sends in &dense_and_sparse(100_000) {
        for workers in [1, 2, 3, 8] {
            assert_parallel_agrees(100_000, sends, 0xD12, 2, workers);
        }
    }
}

#[test]
fn parallel_routing_is_thread_invariant_at_radix_min_n() {
    // The smallest population the radix (and thus the parallel scatter)
    // path handles: every lane-count must agree here, where per-lane
    // staging regions are smallest relative to the bucket count.
    for sends in &dense_and_sparse(RADIX_MIN_N) {
        for workers in [1, 2, 3, 8] {
            assert_parallel_agrees(RADIX_MIN_N, sends, 0xD13, 2, workers);
        }
    }
}

#[test]
fn parallel_routing_is_thread_invariant_at_1e6() {
    for sends in &dense_and_sparse(1_000_000) {
        for workers in [1, 2, 3, 8] {
            assert_parallel_agrees(1_000_000, sends, 0xD14, 1, workers);
        }
    }
}

#[test]
fn simulations_are_bit_identical_across_thread_counts() {
    // Whole-engine invariance: a seeded run at any `with_threads` width
    // reproduces the single-threaded run exactly — census, metrics, and
    // the spent RNG stream.  Half the population starts informed so the
    // rounds are dense and the parallel radix path actually engages.
    let n = RADIX_MIN_N;
    let run = |threads: usize| {
        let agents = RumorAgent::population(n, 0, n / 2);
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(0xE14)
            .with_reference(Opinion::One)
            .with_threads(threads);
        let mut sim = Simulation::new(agents, channel, config).expect("valid simulation");
        sim.run(3);
        (sim.census(), sim.metrics().clone())
    };
    let reference = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(run(threads), reference, "threads = {threads}");
    }
}

#[test]
fn faulty_simulations_are_bit_identical_across_thread_counts() {
    // Fault-injection twin of the invariance test above: the fault plan is
    // drawn from a reserved counter-mode RNG stream, so a Byzantine tenth
    // of the population must not disturb lane invariance — on either the
    // per-agent engine or the hybrid engine, each checked independently.
    let n = RADIX_MIN_N;
    let byz: FaultSpec = "byz:0.1".parse().expect("valid directive");
    let agents_run = |threads: usize, seed: u64| {
        let agents = RumorAgent::population(n, 0, n / 2);
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
            .with_threads(threads)
            .with_faults(byz);
        let mut sim = Simulation::new(agents, channel, config).expect("valid simulation");
        sim.run(3);
        (sim.census(), sim.metrics().clone())
    };
    let reference = agents_run(1, 0xFA14);
    for threads in [2, 4, 8] {
        assert_eq!(
            agents_run(threads, 0xFA14),
            reference,
            "threads = {threads}"
        );
    }
    assert_ne!(agents_run(1, 0xFA15), reference, "seed sensitivity");

    // The hybrid engine draws the same per-agent roles over its tracked
    // prefix; the tracked set must be large enough to hold every faulty
    // agent (n/10 here), and the whole run must stay lane-invariant.
    let k = 16_384;
    let hybrid_run = |threads: usize, seed: u64| {
        let tracked = RumorAgent::population(k, 0, k / 2);
        let bulk = StratifiedPopulation::single(RumorProtocol::population(
            (n - k) as u64,
            0,
            ((n - k) / 2) as u64,
        ));
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
            .with_threads(threads)
            .with_faults(byz);
        let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config)
            .expect("valid simulation");
        sim.run(3);
        (sim.census(), sim.metrics().clone())
    };
    let hybrid_reference = hybrid_run(1, 0xFA16);
    for threads in [2, 4, 8] {
        assert_eq!(
            hybrid_run(threads, 0xFA16),
            hybrid_reference,
            "hybrid threads = {threads}"
        );
    }
    assert_ne!(hybrid_run(1, 0xFA17), hybrid_reference, "hybrid seeds");
}

#[test]
fn crossover_straddles_identically() {
    // One agent below and one agent at the crossover: `route_into` switches
    // paths between these two sizes, and both must match their explicit
    // counterparts exactly.
    for n in [RADIX_MIN_N - 1, RADIX_MIN_N] {
        let sends: Vec<(u32, Opinion)> = (0..n as u32).map(|i| (i, Opinion::One)).collect();
        let mut dispatched = GossipScheduler::new(n).expect("valid");
        let mut single = GossipScheduler::new(n).expect("valid");
        let mut radix = GossipScheduler::new(n).expect("valid");
        let mut rng_d = SimRng::from_seed(99);
        let mut rng_s = SimRng::from_seed(99);
        let mut rng_r = SimRng::from_seed(99);
        let mut out_d = RoundRouting::with_capacity(n);
        let mut out_s = RoundRouting::with_capacity(n);
        let mut out_r = RoundRouting::with_capacity(n);
        for _ in 0..2 {
            dispatched.route_into(&sends, &mut rng_d, &mut out_d);
            single.route_into_single_pass(&sends, &mut rng_s, &mut out_s);
            radix.route_into_radix(&sends, &mut rng_r, &mut out_r);
            assert_eq!(out_d.accepted(), out_s.accepted(), "n = {n}");
            assert_eq!(out_d.accepted(), out_r.accepted(), "n = {n}");
        }
    }
}
