//! Proof that the per-agent engine's round loop is allocation-free after
//! warm-up.
//!
//! A counting global allocator wraps the system allocator; the test runs a
//! simulation for a warm-up period (growing the send buffer, the routing
//! build buffer and the scheduler's internal word/recipient buffers to their
//! steady-state sizes), snapshots the allocation counter, runs hundreds more
//! rounds and asserts the counter did not move.
//!
//! The counter is *per-thread* (const-initialised TLS, so reading it never
//! allocates): the libtest harness's own threads allocate sporadically while
//! a test runs, and a process-global counter would make the assertion flaky.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use breathe_paper as _;
use flip_model::{
    Agent, BinarySymmetricChannel, Opinion, OpinionDelta, Round, RumorAgent, SimRng, Simulation,
    SimulationConfig,
};

thread_local! {
    /// Allocations made by this thread (const-init: no lazy allocation, no
    /// destructor, so it is safe to touch from inside the allocator).
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    THREAD_ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a const-initialised thread-local with no effect on allocation
// behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// An agent whose population keeps churning forever (so the round loop does
/// real routing, noise and delivery work every round): it always pushes and
/// adopts whatever it hears.
struct Churner(Opinion);

impl Agent for Churner {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        Some(self.0)
    }
    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        let before = self.0;
        self.0 = message;
        OpinionDelta::between(Some(before), Some(self.0))
    }
    fn opinion(&self) -> Option<Opinion> {
        Some(self.0)
    }
}

#[test]
fn simulation_round_loop_is_allocation_free_after_warm_up() {
    let n = 2_000usize;

    // A churning all-send population over a noisy channel: every phase of
    // the round loop (send collection, routing, fused noise, delivery,
    // census upkeep) does maximal work each round.
    let agents: Vec<Churner> = (0..n)
        .map(|i| Churner(Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let config = SimulationConfig::new(n).with_seed(77);
    let mut sim = Simulation::new(agents, channel, config).unwrap();

    // Warm-up: buffers grow to steady state.
    sim.run(50);

    let before = thread_allocations();
    sim.run(300);
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "the round loop allocated {} time(s) after warm-up",
        after - before
    );

    // The same holds for a sparse-sender protocol whose accepted counts
    // fluctuate round to round (the routing buffer is pre-sized to the
    // population, so fluctuation can never force a reallocation).
    let agents = RumorAgent::population(n, 0, 5);
    let channel = BinarySymmetricChannel::from_epsilon(0.3).unwrap();
    let config = SimulationConfig::new(n).with_seed(78);
    let mut sim = Simulation::new(agents, channel, config).unwrap();
    sim.run(50);

    let before = thread_allocations();
    sim.run(300);
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "the rumor round loop allocated {} time(s) after warm-up",
        after - before
    );
}

#[test]
fn parallel_radix_rounds_are_allocation_free_after_warm_up() {
    // The same crossover population with four worker lanes: the parallel
    // scatter/resolve/emit path stages into per-lane regions owned by
    // `RoundRouting`/`GossipScheduler` (pre-sized at construction), and a
    // `RoundPool` dispatch is a futex wake, not an allocation.  The counter
    // is per-thread, so this asserts the caller lane — which runs the full
    // dispatch machinery plus its share of every phase — allocates nothing;
    // the worker lanes execute the identical phase code on their own
    // pre-sized regions.
    let n = flip_model::RADIX_MIN_N;
    let agents: Vec<Churner> = (0..n)
        .map(|i| Churner(Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let config = SimulationConfig::new(n).with_seed(79).with_threads(4);
    let mut sim = Simulation::new(agents, channel, config).unwrap();

    sim.run(5);

    let before = thread_allocations();
    sim.run(20);
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "the parallel radix round loop allocated {} time(s) after warm-up",
        after - before
    );
}

#[test]
fn radix_routed_rounds_are_allocation_free_after_warm_up() {
    // A population at the radix crossover: dense all-send rounds run
    // through the cache-bucketed staging path (fixed-capacity bucket areas
    // + spill list inside `RoundRouting`/`GossipScheduler`), which must be
    // just as allocation-free as the single-pass path once warmed up.
    let n = flip_model::RADIX_MIN_N;
    let agents: Vec<Churner> = (0..n)
        .map(|i| Churner(Opinion::from_bit(u8::from(i % 2 == 0))))
        .collect();
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let config = SimulationConfig::new(n).with_seed(79);
    let mut sim = Simulation::new(agents, channel, config).unwrap();

    sim.run(5);

    let before = thread_allocations();
    sim.run(20);
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "the radix round loop allocated {} time(s) after warm-up",
        after - before
    );
}
