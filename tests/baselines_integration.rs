//! Cross-protocol integration tests reproducing the qualitative comparisons of
//! paper §1.2 and §1.6: breathe-before-speaking succeeds where the naive
//! strategies fail.

use baselines::{
    chain_correct_probability, ForwardingProtocol, NoisyVoterProtocol, TwoChoicesProtocol,
    WaitForSourceProtocol,
};
use breathe::{BroadcastProtocol, Params};
use flip_model::Opinion;

const N: usize = 600;
const EPSILON: f64 = 0.15;

fn breathe_fraction(seed: u64) -> (f64, u64) {
    let params = Params::practical(N, EPSILON).unwrap();
    let protocol = BroadcastProtocol::new(params.clone(), Opinion::One);
    let outcome = protocol.run_with_seed(seed).unwrap();
    (outcome.fraction_correct, params.total_rounds())
}

#[test]
fn breathe_beats_immediate_forwarding_under_noise() {
    let (breathe, budget) = breathe_fraction(21);
    let forwarding = ForwardingProtocol::new(N, EPSILON, budget)
        .unwrap()
        .run_with_seed(Opinion::One, 21)
        .unwrap();
    assert!(breathe > 0.95, "breathe = {breathe}");
    assert!(
        forwarding.fraction_correct < breathe - 0.15,
        "forwarding = {} vs breathe = {breathe}",
        forwarding.fraction_correct
    );
}

#[test]
fn breathe_beats_wait_for_source_at_equal_round_budget() {
    let (breathe, budget) = breathe_fraction(22);
    let wait = WaitForSourceProtocol::new(N, EPSILON, budget)
        .unwrap()
        .run_with_seed(Opinion::One, 22)
        .unwrap();
    assert!(
        wait.fraction_correct < breathe,
        "wait = {} vs breathe = {breathe}",
        wait.fraction_correct
    );
    // Wait-for-source sends only one message per round.
    assert_eq!(wait.messages_sent, budget);
}

#[test]
fn breathe_beats_unseeded_two_choices_and_noisy_voter() {
    let (breathe, budget) = breathe_fraction(23);
    let two_choices = TwoChoicesProtocol::new(N, EPSILON, budget)
        .unwrap()
        .run_with_seed(Opinion::One, N / 2 + 1, 23)
        .unwrap();
    let voter = NoisyVoterProtocol::new(N, EPSILON, budget)
        .unwrap()
        .run_with_seed(Opinion::One, 23)
        .unwrap();
    assert!(breathe > two_choices.fraction_correct);
    assert!(breathe > voter.fraction_correct);
    // Starting from a (nearly) unbiased configuration, neither dynamics can
    // reliably find the source's opinion: they hover near a fair coin.
    assert!(two_choices.fraction_correct < 0.85);
    assert!(voter.fraction_correct < 0.85);
}

#[test]
fn forwarding_accuracy_tracks_the_path_deterioration_formula() {
    // The typical forwarding depth is Theta(log n); the end-to-end accuracy of
    // immediate forwarding should therefore be within the range spanned by the
    // one-hop and the log2(n)-hop closed forms.
    let budget = 400;
    let forwarding = ForwardingProtocol::new(1_000, 0.2, budget)
        .unwrap()
        .run_with_seed(Opinion::One, 3)
        .unwrap();
    let best = chain_correct_probability(0.2, 1);
    let worst = chain_correct_probability(0.2, 14);
    assert!(
        forwarding.fraction_correct <= best + 0.05,
        "fraction = {}",
        forwarding.fraction_correct
    );
    assert!(
        forwarding.fraction_correct >= worst - 0.1,
        "fraction = {}",
        forwarding.fraction_correct
    );
}

#[test]
fn noiseless_baselines_do_work_confirming_noise_is_the_differentiator() {
    // With epsilon = 0.5 (no noise) immediate forwarding solves broadcast: the
    // paper's difficulty is entirely created by the channel noise.
    let forwarding = ForwardingProtocol::new(500, 0.5, 300)
        .unwrap()
        .run_with_seed(Opinion::One, 4)
        .unwrap();
    assert!(forwarding.fraction_correct > 0.99);

    let two_choices = TwoChoicesProtocol::new(500, 0.5, 300)
        .unwrap()
        .run_with_seed(Opinion::One, 320, 4)
        .unwrap();
    assert!(two_choices.fraction_correct > 0.95);
}
