//! Equivalence of the dense counts-based engine and the per-agent reference
//! engine.
//!
//! The two backends share the round structure (send → route/collide →
//! corrupt → deliver) but the dense engine samples aggregate transition
//! counts instead of iterating agents, replacing the exact balls-into-bins
//! collision process with its independent-reception marginal.  The contract
//! (documented on `flip_model::DenseSimulation`) is therefore:
//!
//! 1. **identical** results wherever the dynamics are deterministic — e.g.
//!    any fixed point of a noiseless protocol, or a population that sends
//!    nothing — and
//! 2. **distributional equivalence** elsewhere: mean population trajectories
//!    agree within Chernoff-style fluctuation bounds.
//!
//! All tests run under fixed seeds and are fully deterministic.

use breathe_paper as _;
use flip_model::{
    AdversarialCapChannel, Agent, BinarySymmetricChannel, DenseSimulation, HybridSimulation,
    NoiselessChannel, Opinion, OpinionDelta, Round, RumorAgent, RumorProtocol, SimRng, Simulation,
    SimulationConfig, StratifiedPopulation, StratifiedSimulation, VoterProtocol, ZealotAgent,
    ZealotRumorProtocol,
};

/// The per-agent twin of `VoterProtocol`: always pushes its opinion, adopts
/// whatever it hears.
struct Voter {
    opinion: Opinion,
}

impl Agent for Voter {
    const USES_END_ROUND: bool = false;
    fn send(&mut self, _round: Round, _rng: &mut SimRng) -> Option<Opinion> {
        Some(self.opinion)
    }
    fn deliver(&mut self, _round: Round, message: Opinion, _rng: &mut SimRng) -> OpinionDelta {
        let before = self.opinion;
        self.opinion = message;
        OpinionDelta::between(Some(before), Some(self.opinion))
    }
    fn opinion(&self) -> Option<Opinion> {
        Some(self.opinion)
    }
}

fn adopters(n: usize, ones: usize) -> Vec<RumorAgent> {
    RumorAgent::population(n, 0, ones)
}

// ---------------------------------------------------------------- identity

/// A noiseless, unanimous population is a deterministic fixed point: both
/// backends must report *identical* censuses and message counts every round.
#[test]
fn degenerate_noiseless_fixed_point_is_identical() {
    let n = 1_000;
    let mut agent_sim = Simulation::new(
        adopters(n, n),
        NoiselessChannel,
        SimulationConfig::new(n).with_seed(1),
    )
    .unwrap();
    let mut dense_sim = DenseSimulation::new(
        RumorProtocol,
        NoiselessChannel,
        RumorProtocol::population(n as u64, 0, n as u64),
        SimulationConfig::new(n).with_seed(2),
    )
    .unwrap();

    for _ in 0..50 {
        let a = agent_sim.step();
        let d = dense_sim.step();
        assert_eq!(a.census_active, d.census_active);
        assert_eq!(a.metrics.messages_sent, d.metrics.messages_sent);
        assert_eq!(
            agent_sim.census().holding(Opinion::One),
            dense_sim.census().holding(Opinion::One)
        );
    }
    assert!(agent_sim.census().is_unanimous(Opinion::One));
    assert!(dense_sim.census().is_unanimous(Opinion::One));
}

/// A population in which nobody ever sends is equally deterministic: nothing
/// may change on either backend, round after round.
#[test]
fn silent_population_is_identical() {
    let n = 500;
    let mut agent_sim = Simulation::new(
        adopters(n, 0),
        NoiselessChannel,
        SimulationConfig::new(n).with_seed(3),
    )
    .unwrap();
    let mut dense_sim = DenseSimulation::new(
        RumorProtocol,
        NoiselessChannel,
        RumorProtocol::population(n as u64, 0, 0),
        SimulationConfig::new(n).with_seed(4),
    )
    .unwrap();
    for _ in 0..20 {
        let a = agent_sim.step();
        let d = dense_sim.step();
        assert_eq!(a.census_active, 0);
        assert_eq!(d.census_active, 0);
        assert_eq!(a.metrics.messages_sent, 0);
        assert_eq!(d.metrics.messages_sent, 0);
    }
}

/// Absorption is permanent on both backends: once a noiseless rumor saturates
/// the population, the unanimous state never decays.
#[test]
fn noiseless_rumor_reaches_the_same_absorbing_state() {
    let n = 400;
    let mut agent_sim = Simulation::new(
        adopters(n, 1),
        NoiselessChannel,
        SimulationConfig::new(n).with_seed(5),
    )
    .unwrap();
    let mut dense_sim = DenseSimulation::new(
        RumorProtocol,
        NoiselessChannel,
        RumorProtocol::population(n as u64, 0, 1),
        SimulationConfig::new(n).with_seed(6),
    )
    .unwrap();
    agent_sim.run_until(5_000, |s| s.census().active() == n);
    dense_sim.run_until(5_000, |s| s.census().active() == n);
    assert!(agent_sim.census().is_unanimous(Opinion::One));
    assert!(dense_sim.census().is_unanimous(Opinion::One));
    // Still absorbed 50 rounds later.
    agent_sim.run(50);
    dense_sim.run(50);
    assert!(agent_sim.census().is_unanimous(Opinion::One));
    assert!(dense_sim.census().is_unanimous(Opinion::One));
}

// ------------------------------------------------------- mean trajectories

/// Chernoff-style allowance for comparing two empirical means of a
/// `[0, n]`-valued statistic over `trials` independent runs: with per-run
/// fluctuations of order `√n` (binomial concentration), the difference of
/// means concentrates within `O(√(n/trials))`.  The constant 6 keeps the
/// false-alarm probability far below one in a million while still detecting
/// any systematic O(n) discrepancy between the backends.
fn chernoff_allowance(n: f64, trials: f64) -> f64 {
    6.0 * (n / trials).sqrt() + 6.0
}

/// Mean active-count trajectories of noisy rumor spreading must agree at
/// every checkpoint within the Chernoff allowance.
#[test]
fn noisy_rumor_mean_trajectories_agree() {
    let n = 2_000usize;
    let trials = 32u64;
    let checkpoints = [3u64, 6, 10, 15, 25];
    let epsilon = 0.25;

    // trajectories[c][t] = active count at checkpoint c in trial t.
    let mut agent_traj = vec![Vec::new(); checkpoints.len()];
    let mut dense_traj = vec![Vec::new(); checkpoints.len()];
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::from_epsilon(epsilon).unwrap();
        let mut sim = Simulation::new(
            adopters(n, 10),
            channel,
            SimulationConfig::new(n).with_seed(1_000 + trial),
        )
        .unwrap();
        let mut round = 0u64;
        for (c, &checkpoint) in checkpoints.iter().enumerate() {
            sim.run(checkpoint - round);
            round = checkpoint;
            agent_traj[c].push(sim.census().active() as f64);
        }

        let channel = BinarySymmetricChannel::from_epsilon(epsilon).unwrap();
        let mut sim = DenseSimulation::new(
            RumorProtocol,
            channel,
            RumorProtocol::population(n as u64, 0, 10),
            SimulationConfig::new(n).with_seed(2_000 + trial),
        )
        .unwrap();
        let mut round = 0u64;
        for (c, &checkpoint) in checkpoints.iter().enumerate() {
            sim.run(checkpoint - round);
            round = checkpoint;
            dense_traj[c].push(sim.census().active() as f64);
        }
    }

    let allowance = chernoff_allowance(n as f64, trials as f64);
    for (c, &checkpoint) in checkpoints.iter().enumerate() {
        let agent_mean: f64 = agent_traj[c].iter().sum::<f64>() / trials as f64;
        let dense_mean: f64 = dense_traj[c].iter().sum::<f64>() / trials as f64;
        assert!(
            (agent_mean - dense_mean).abs() < allowance,
            "round {checkpoint}: agents mean {agent_mean:.1} vs dense mean {dense_mean:.1} \
             (allowance {allowance:.1})"
        );
    }
}

/// The noisy voter model keeps its mean opinion split near the initial split
/// on both backends (the voter update is unbiased in expectation while the
/// noise pulls towards 1/2, so neither backend may drift systematically away
/// from the other).
#[test]
fn noisy_voter_mean_splits_agree() {
    let n = 2_000usize;
    let trials = 32u64;
    let rounds = 30u64;
    let crossover = 0.1;

    let mut agent_ones = Vec::new();
    let mut dense_ones = Vec::new();
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let voters: Vec<Voter> = (0..n)
            .map(|i| Voter {
                opinion: if i < n * 7 / 10 {
                    Opinion::One
                } else {
                    Opinion::Zero
                },
            })
            .collect();
        let mut sim = Simulation::new(
            voters,
            channel,
            SimulationConfig::new(n).with_seed(3_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        agent_ones.push(sim.census().holding(Opinion::One) as f64);

        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let population = flip_model::DensePopulation::from_counts(vec![
            (n * 3 / 10) as u64,
            (n * 7 / 10) as u64,
        ])
        .unwrap();
        let mut sim = DenseSimulation::new(
            VoterProtocol,
            channel,
            population,
            SimulationConfig::new(n).with_seed(4_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        dense_ones.push(sim.census().holding(Opinion::One) as f64);
    }

    let agent_mean: f64 = agent_ones.iter().sum::<f64>() / trials as f64;
    let dense_mean: f64 = dense_ones.iter().sum::<f64>() / trials as f64;
    let allowance = chernoff_allowance(n as f64, trials as f64);
    assert!(
        (agent_mean - dense_mean).abs() < allowance,
        "agents mean {agent_mean:.1} vs dense mean {dense_mean:.1} (allowance {allowance:.1})"
    );
}

/// Aggregate message accounting must agree in expectation too: with every
/// agent sending each round, both backends accept `≈ n(1 − 1/e)` messages
/// per round and flip the configured fraction of them.
#[test]
fn message_metrics_agree_in_expectation() {
    let n = 5_000usize;
    let rounds = 200u64;
    let crossover = 0.2;

    let channel = BinarySymmetricChannel::new(crossover).unwrap();
    let voters: Vec<Voter> = (0..n)
        .map(|i| Voter {
            opinion: Opinion::from_bit(u8::from(i % 2 == 0)),
        })
        .collect();
    let mut agent_sim =
        Simulation::new(voters, channel, SimulationConfig::new(n).with_seed(11)).unwrap();
    agent_sim.run(rounds);

    let channel = BinarySymmetricChannel::new(crossover).unwrap();
    let population =
        flip_model::DensePopulation::from_counts(vec![(n / 2) as u64, (n / 2) as u64]).unwrap();
    let mut dense_sim = DenseSimulation::new(
        VoterProtocol,
        channel,
        population,
        SimulationConfig::new(n).with_seed(12),
    )
    .unwrap();
    dense_sim.run(rounds);

    let a = agent_sim.metrics();
    let d = dense_sim.metrics();
    assert_eq!(
        a.messages_sent, d.messages_sent,
        "everyone sends every round"
    );
    let a_accept = a.messages_accepted as f64 / a.messages_sent as f64;
    let d_accept = d.messages_accepted as f64 / d.messages_sent as f64;
    assert!(
        (a_accept - d_accept).abs() < 0.01,
        "acceptance rates diverge: {a_accept:.4} vs {d_accept:.4}"
    );
    let a_flip = a.empirical_flip_rate().unwrap();
    let d_flip = d.empirical_flip_rate().unwrap();
    assert!(
        (a_flip - d_flip).abs() < 0.01,
        "flip rates diverge: {a_flip:.4} vs {d_flip:.4}"
    );
}

// ------------------------------------- optimized-engine noise-path parity

/// The *optimized* agent engine (fused geometric-skip noise, incremental
/// census, priority-reservoir routing) must track the dense engine's mean
/// trajectories through the noisy regime the fused path handles — the suite
/// above certifies the engine as a whole; this pins the fused-noise path at
/// a high crossover where skip gaps are short.
#[test]
fn fused_noise_engine_matches_dense_voter_trajectories() {
    let n = 2_000usize;
    let trials = 32u64;
    let rounds = 25u64;
    let crossover = 0.3; // mean skip gap ≈ 2.3: exercises dense flip runs

    let mut agent_ones = Vec::new();
    let mut dense_ones = Vec::new();
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let voters: Vec<Voter> = (0..n)
            .map(|i| Voter {
                opinion: if i < n * 4 / 5 {
                    Opinion::One
                } else {
                    Opinion::Zero
                },
            })
            .collect();
        let mut sim = Simulation::new(
            voters,
            channel,
            SimulationConfig::new(n).with_seed(5_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        agent_ones.push(sim.census().holding(Opinion::One) as f64);

        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let population =
            flip_model::DensePopulation::from_counts(vec![(n / 5) as u64, (n * 4 / 5) as u64])
                .unwrap();
        let mut sim = DenseSimulation::new(
            VoterProtocol,
            channel,
            population,
            SimulationConfig::new(n).with_seed(6_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        dense_ones.push(sim.census().holding(Opinion::One) as f64);
    }

    let agent_mean: f64 = agent_ones.iter().sum::<f64>() / trials as f64;
    let dense_mean: f64 = dense_ones.iter().sum::<f64>() / trials as f64;
    let allowance = chernoff_allowance(n as f64, trials as f64);
    assert!(
        (agent_mean - dense_mean).abs() < allowance,
        "agents mean {agent_mean:.1} vs dense mean {dense_mean:.1} (allowance {allowance:.1})"
    );
}

/// The same voter-model agreement at the radix crossover: every round is an
/// all-send dense round, so the agents engine routes through the
/// cache-bucketed radix path from round 0.  Pins that the radix rework kept
/// the model itself unchanged at the population scale it was built for.
#[test]
fn radix_routed_engine_matches_dense_voter_trajectories() {
    let n = flip_model::RADIX_MIN_N;
    let trials = 8u64;
    let rounds = 10u64;
    let crossover = 0.3;

    let mut agent_ones = Vec::new();
    let mut dense_ones = Vec::new();
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let voters: Vec<Voter> = (0..n)
            .map(|i| Voter {
                opinion: if i < n * 4 / 5 {
                    Opinion::One
                } else {
                    Opinion::Zero
                },
            })
            .collect();
        let mut sim = Simulation::new(
            voters,
            channel,
            SimulationConfig::new(n).with_seed(7_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        agent_ones.push(sim.census().holding(Opinion::One) as f64);

        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        // `n` is not divisible by 5: match the agent loop's split exactly.
        let ones = (n * 4 / 5) as u64;
        let population =
            flip_model::DensePopulation::from_counts(vec![n as u64 - ones, ones]).unwrap();
        let mut sim = DenseSimulation::new(
            VoterProtocol,
            channel,
            population,
            SimulationConfig::new(n).with_seed(8_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        dense_ones.push(sim.census().holding(Opinion::One) as f64);
    }

    let agent_mean: f64 = agent_ones.iter().sum::<f64>() / trials as f64;
    let dense_mean: f64 = dense_ones.iter().sum::<f64>() / trials as f64;
    let allowance = chernoff_allowance(n as f64, trials as f64);
    assert!(
        (agent_mean - dense_mean).abs() < allowance,
        "agents mean {agent_mean:.1} vs dense mean {dense_mean:.1} (allowance {allowance:.1})"
    );
}

/// The radix-crossover voter agreement again, with the agents engine running
/// its rounds over three worker lanes: the parallel router is bit-identical
/// to the sequential one, so the threaded engine must clear exactly the same
/// Chernoff bar against the dense engine that the sequential leg does.
#[test]
fn parallel_radix_engine_matches_dense_voter_trajectories() {
    let n = flip_model::RADIX_MIN_N;
    let trials = 8u64;
    let rounds = 10u64;
    let crossover = 0.3;

    let mut agent_ones = Vec::new();
    let mut dense_ones = Vec::new();
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let voters: Vec<Voter> = (0..n)
            .map(|i| Voter {
                opinion: if i < n * 4 / 5 {
                    Opinion::One
                } else {
                    Opinion::Zero
                },
            })
            .collect();
        let mut sim = Simulation::new(
            voters,
            channel,
            SimulationConfig::new(n)
                .with_seed(7_000 + trial)
                .with_threads(3),
        )
        .unwrap();
        sim.run(rounds);
        agent_ones.push(sim.census().holding(Opinion::One) as f64);

        let channel = BinarySymmetricChannel::new(crossover).unwrap();
        let ones = (n * 4 / 5) as u64;
        let population =
            flip_model::DensePopulation::from_counts(vec![n as u64 - ones, ones]).unwrap();
        let mut sim = DenseSimulation::new(
            VoterProtocol,
            channel,
            population,
            SimulationConfig::new(n).with_seed(8_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        dense_ones.push(sim.census().holding(Opinion::One) as f64);
    }

    let agent_mean: f64 = agent_ones.iter().sum::<f64>() / trials as f64;
    let dense_mean: f64 = dense_ones.iter().sum::<f64>() / trials as f64;
    let allowance = chernoff_allowance(n as f64, trials as f64);
    assert!(
        (agent_mean - dense_mean).abs() < allowance,
        "agents mean {agent_mean:.1} vs dense mean {dense_mean:.1} (allowance {allowance:.1})"
    );
}

/// A genuinely varying channel (`AdversarialCapChannel` with a non-collapsed
/// interval) cannot be fused, so the engine falls back to one `transmit` per
/// message; that per-message path must also track the dense engine, which
/// consumes the channel's `mean_crossover`.
#[test]
fn per_message_fallback_engine_matches_dense_mean_trajectories() {
    let n = 2_000usize;
    let trials = 32u64;
    let checkpoints = [3u64, 8, 15, 25];

    let mut agent_traj = vec![Vec::new(); checkpoints.len()];
    let mut dense_traj = vec![Vec::new(); checkpoints.len()];
    for trial in 0..trials {
        // Flip probability uniform on [0.1, 0.3] per message (mean 0.2).
        let channel = AdversarialCapChannel::new(0.1, 0.3).unwrap();
        assert!(
            flip_model::Channel::fixed_crossover(&channel).is_none(),
            "the interval channel must take the per-message path"
        );
        let mut sim = Simulation::new(
            adopters(n, 10),
            channel,
            SimulationConfig::new(n).with_seed(7_000 + trial),
        )
        .unwrap();
        let mut round = 0u64;
        for (c, &checkpoint) in checkpoints.iter().enumerate() {
            sim.run(checkpoint - round);
            round = checkpoint;
            agent_traj[c].push(sim.census().active() as f64);
        }

        let channel = AdversarialCapChannel::new(0.1, 0.3).unwrap();
        let mut sim = DenseSimulation::new(
            RumorProtocol,
            channel,
            RumorProtocol::population(n as u64, 0, 10),
            SimulationConfig::new(n).with_seed(8_000 + trial),
        )
        .unwrap();
        let mut round = 0u64;
        for (c, &checkpoint) in checkpoints.iter().enumerate() {
            sim.run(checkpoint - round);
            round = checkpoint;
            dense_traj[c].push(sim.census().active() as f64);
        }
    }

    let allowance = chernoff_allowance(n as f64, trials as f64);
    for (c, &checkpoint) in checkpoints.iter().enumerate() {
        let agent_mean: f64 = agent_traj[c].iter().sum::<f64>() / trials as f64;
        let dense_mean: f64 = dense_traj[c].iter().sum::<f64>() / trials as f64;
        assert!(
            (agent_mean - dense_mean).abs() < allowance,
            "round {checkpoint}: agents mean {agent_mean:.1} vs dense mean {dense_mean:.1} \
             (allowance {allowance:.1})"
        );
    }
}

// ---------------------------------------------- stratified & hybrid engines

/// A single-stratum stratified run must be *bit-identical* to the dense
/// engine from equal RNG states — `DenseSimulation` delegates to
/// `StratifiedSimulation`, and this pins that an explicitly-constructed
/// single-stratum simulation consumes the RNG stream in exactly the same
/// order (no extra draws, no reordering).
#[test]
fn single_stratum_stratified_rounds_are_bit_identical_to_dense() {
    let n = 10_000u64;
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let config = SimulationConfig::new(n as usize)
        .with_seed(0xD0_5EED)
        .with_reference(Opinion::One);
    let mut dense = DenseSimulation::new(
        RumorProtocol,
        channel,
        RumorProtocol::population(n, 0, 3),
        config.clone(),
    )
    .unwrap();
    let mut stratified = StratifiedSimulation::new(
        RumorProtocol,
        vec![channel],
        StratifiedPopulation::single(RumorProtocol::population(n, 0, 3)),
        config,
    )
    .unwrap();
    for round in 0..40 {
        assert_eq!(dense.step(), stratified.step(), "round {round}");
    }
    assert_eq!(dense.metrics(), stratified.metrics());
    assert_eq!(
        dense.population().counts(),
        stratified.population().stratum(0).counts()
    );
}

/// Mean trajectories of the two-stratum zealot scenario must agree between
/// the per-agent reference engine (`ZealotAgent`) and the stratified dense
/// engine (`ZealotRumorProtocol`) within the Chernoff allowance — the
/// heterogeneous analogue of `noisy_rumor_mean_trajectories_agree`.
#[test]
fn stratified_zealot_mean_trajectories_agree() {
    let n = 2_000usize;
    let zealots = 200usize;
    let informed = 20usize;
    let trials = 32u64;
    let rounds = 20u64;
    let epsilon = 0.25;

    let mut agent_zeros = Vec::new();
    let mut agent_ones = Vec::new();
    let mut strat_zeros = Vec::new();
    let mut strat_ones = Vec::new();
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::from_epsilon(epsilon).unwrap();
        let agents = ZealotAgent::population(n, 0, informed, zealots);
        let mut sim = Simulation::new(
            agents,
            channel,
            SimulationConfig::new(n).with_seed(9_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        agent_zeros.push(sim.census().holding(Opinion::Zero) as f64);
        agent_ones.push(sim.census().holding(Opinion::One) as f64);

        let channel = BinarySymmetricChannel::from_epsilon(epsilon).unwrap();
        let population =
            ZealotRumorProtocol::population(n as u64, 0, informed as u64, zealots as u64);
        let mut sim = StratifiedSimulation::new(
            ZealotRumorProtocol,
            vec![channel; 2],
            population,
            SimulationConfig::new(n).with_seed(10_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        strat_zeros.push(sim.census().holding(Opinion::Zero) as f64);
        strat_ones.push(sim.census().holding(Opinion::One) as f64);
    }

    let allowance = chernoff_allowance(n as f64, trials as f64);
    for (label, agents, stratified) in [
        ("zeros", &agent_zeros, &strat_zeros),
        ("ones", &agent_ones, &strat_ones),
    ] {
        let agent_mean: f64 = agents.iter().sum::<f64>() / trials as f64;
        let strat_mean: f64 = stratified.iter().sum::<f64>() / trials as f64;
        assert!(
            (agent_mean - strat_mean).abs() < allowance,
            "{label}: agents mean {agent_mean:.1} vs stratified mean {strat_mean:.1} \
             (allowance {allowance:.1})"
        );
    }
}

/// The hybrid engine (tracked agents against a dense bulk) must track the
/// full per-agent engine's mean activation trajectory at small `n`.
#[test]
fn hybrid_mean_trajectories_agree_with_the_per_agent_engine() {
    let n = 2_000usize;
    let tracked_count = 64usize;
    let informed = 10usize;
    let trials = 32u64;
    let rounds = 15u64;
    let epsilon = 0.25;

    let mut agent_active = Vec::new();
    let mut hybrid_active = Vec::new();
    for trial in 0..trials {
        let channel = BinarySymmetricChannel::from_epsilon(epsilon).unwrap();
        let mut sim = Simulation::new(
            adopters(n, informed),
            channel,
            SimulationConfig::new(n).with_seed(11_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        agent_active.push(sim.census().active() as f64);

        // The informed agents all land in the tracked subpopulation; the
        // bulk starts silent — the same global initial state.
        let channel = BinarySymmetricChannel::from_epsilon(epsilon).unwrap();
        let tracked = RumorAgent::population(tracked_count, 0, informed);
        let bulk = StratifiedPopulation::single(RumorProtocol::population(
            (n - tracked_count) as u64,
            0,
            0,
        ));
        let mut sim = HybridSimulation::new(
            tracked,
            RumorProtocol,
            channel,
            bulk,
            SimulationConfig::new(n).with_seed(12_000 + trial),
        )
        .unwrap();
        sim.run(rounds);
        hybrid_active.push(sim.census().active() as f64);
    }

    let agent_mean: f64 = agent_active.iter().sum::<f64>() / trials as f64;
    let hybrid_mean: f64 = hybrid_active.iter().sum::<f64>() / trials as f64;
    let allowance = chernoff_allowance(n as f64, trials as f64);
    assert!(
        (agent_mean - hybrid_mean).abs() < allowance,
        "agents mean {agent_mean:.1} vs hybrid mean {hybrid_mean:.1} (allowance {allowance:.1})"
    );
}

/// Golden-seed snapshot of a stratified census: pins the exact per-stratum
/// counts and message totals of a fixed heterogeneous run, so any change to
/// the stratified engine's RNG draw order fails here before it can silently
/// shift every stratified experiment.
#[test]
fn stratified_zealot_golden_seed_census_snapshot() {
    let n = 10_000u64;
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let population = ZealotRumorProtocol::population(n, 0, 50, 1_000);
    let config = SimulationConfig::new(n as usize)
        .with_seed(0xD0_5EED)
        .with_reference(Opinion::One);
    let mut sim =
        StratifiedSimulation::new(ZealotRumorProtocol, vec![channel; 2], population, config)
            .unwrap();
    sim.run(30);

    assert_eq!(sim.population().stratum(0).counts(), &[0, 5_169, 3_831]);
    assert_eq!(sim.population().stratum(1).counts(), &[1_000]);
    let census = sim.census();
    assert_eq!(census.holding(Opinion::Zero), 6_169);
    assert_eq!(census.holding(Opinion::One), 3_831);
    let metrics = sim.metrics();
    assert_eq!(metrics.messages_sent, 266_360);
    assert_eq!(metrics.messages_accepted, 172_042);
    assert_eq!(metrics.bits_flipped, 51_541);
}

// ------------------------------------------------------- million-agent runs

/// The heterogeneous zealot scenario completes at `n = 10⁶` on the
/// stratified engine — the scale the per-agent engine cannot reach — and
/// the rumor still saturates the honest population.
#[test]
fn stratified_zealot_million_completes() {
    let n = 1_000_000u64;
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let population = ZealotRumorProtocol::population(n, 0, 1_000, 100_000);
    let config = SimulationConfig::new(n as usize)
        .with_seed(99)
        .with_reference(Opinion::One);
    let mut sim =
        StratifiedSimulation::new(ZealotRumorProtocol, vec![channel; 2], population, config)
            .unwrap();
    let rounds = sim.run_until(500, |s| s.census().active() == n as usize);
    assert!(rounds < 500, "activation must beat the cap (took {rounds})");
    assert_eq!(sim.census().active(), n as usize);
    assert_eq!(sim.population().stratum(1).counts(), &[100_000]);
}

/// The adversarial-cap scenario completes at `n = 10⁶` on the hybrid
/// engine: the tracked agents see the channel's exact per-message law while
/// the bulk runs on its mean — previously this channel was stuck at
/// per-agent scale.
#[test]
fn hybrid_adversarial_cap_million_completes() {
    let n = 1_000_000usize;
    let tracked_count = 32usize;
    let channel = AdversarialCapChannel::new(0.1, 0.3).unwrap();
    let tracked = RumorAgent::population(tracked_count, 0, 1);
    let bulk = StratifiedPopulation::single(RumorProtocol::population(
        (n - tracked_count) as u64,
        0,
        999,
    ));
    let config = SimulationConfig::new(n)
        .with_seed(7)
        .with_reference(Opinion::One);
    let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config).unwrap();
    let rounds = sim.run_until(500, |s| s.census().active() == n);
    assert!(rounds < 500, "activation must beat the cap (took {rounds})");
    assert_eq!(sim.census().active(), n);
}

// ------------------------------------------------------------- performance

/// The acceptance bar for the dense engine: one million agents for 500 rounds
/// in under a second (release builds only — debug builds skip the wall-clock
/// assertion but still exercise the run).
#[test]
fn dense_million_agents_500_rounds_under_a_second() {
    let n = 1_000_000u64;
    let channel = BinarySymmetricChannel::from_epsilon(0.2).unwrap();
    let population = RumorProtocol::population(n, 0, 1_000);
    let config = SimulationConfig::new(n as usize).with_seed(42);
    let start = std::time::Instant::now();
    let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config).unwrap();
    sim.run(500);
    let elapsed = start.elapsed();
    assert_eq!(sim.round(), 500);
    assert_eq!(
        sim.census().active(),
        n as usize,
        "rumor saturates well before round 500"
    );
    if !cfg!(debug_assertions) {
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "500 dense rounds at n = 10^6 took {elapsed:?}"
        );
    }
}
