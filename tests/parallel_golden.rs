//! Golden-seed snapshot for the parallel radix router at n = 10⁶.
//!
//! `tests/dense_golden.rs` pins the dense engine's stream; this file pins
//! the per-agent engine's *parallel* round pipeline at full radix scale.
//! The constants ARE the reproducibility contract: a seeded million-agent
//! run over worker lanes must keep producing exactly these census counts
//! and message tallies across releases — and, because the parallel router
//! is bit-identical to the sequential paths by construction, the identical
//! constants must hold at every thread count, including one.  If this test
//! fails, the routing pipeline changed (redraw chain, packed-word layout,
//! scatter/resolve/emit order, RNG block reservation — anything), and every
//! seeded large-n result in the repository changed with it.

use breathe_paper as _;
use flip_model::{
    BinarySymmetricChannel, Opinion, RumorAgent, Simulation, SimulationConfig, RADIX_MIN_N,
};

/// One snapshot run: census split and exact message accounting.
fn snapshot(n: usize, threads: usize, rounds: u64) -> (usize, usize, u64, u64, u64, u64) {
    let agents = RumorAgent::population(n, 0, n / 2);
    let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
    let config = SimulationConfig::new(n)
        .with_seed(0x9A_11E1)
        .with_reference(Opinion::One)
        .with_threads(threads);
    let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
    sim.run(rounds);
    let metrics = sim.metrics();
    (
        sim.census().active(),
        sim.census().holding(Opinion::One),
        metrics.messages_sent,
        metrics.messages_accepted,
        metrics.messages_collided,
        metrics.bits_flipped,
    )
}

#[test]
fn parallel_radix_golden_seed_snapshot_at_1e6() {
    // Half the million agents start informed, so every round is dense and
    // routes through the parallel radix scatter from round 0.
    let golden = (848_959, 739_092, 1_196_901, 895_338, 301_563, 268_698);
    assert_eq!(snapshot(1_000_000, 4, 2), golden);
    // Bit-identity across lane counts is part of the pinned contract.
    assert_eq!(snapshot(1_000_000, 1, 2), golden);
}

/// The n = 10⁷ smoke: one decade past the golden tier, the scale the
/// parallel round exists for.  Ignored by default — it wants a release
/// build and ~1 GB of buffers — and run explicitly (`-- --ignored`) by the
/// weekly large-n workflow.  No pinned constants at this tier; the contract
/// checked is thread-count bit-identity plus exact message conservation.
#[test]
#[ignore = "large-n smoke (release builds; run via the weekly large-n workflow)"]
fn parallel_radix_smoke_at_1e7() {
    let n = 10_000_000;
    let threaded = snapshot(n, 4, 1);
    assert_eq!(threaded, snapshot(n, 1, 1));
    let (active, _, sent, accepted, collided, _) = threaded;
    assert_eq!(sent, (n / 2) as u64, "every informed agent pushes");
    assert_eq!(sent, accepted + collided, "conservation");
    assert!(active >= n / 2, "informed agents never forget");
}

#[test]
fn parallel_radix_golden_snapshot_is_seed_sensitive() {
    // The snapshot pins a stream, not a coincidence: at the (cheaper) radix
    // crossover, a neighbouring seed must diverge while lane counts agree.
    let run = |seed: u64, threads: usize| {
        let n = RADIX_MIN_N;
        let agents = RumorAgent::population(n, 0, n / 2);
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
            .with_threads(threads);
        let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
        sim.run(2);
        (sim.census().holding(Opinion::One), sim.metrics().clone())
    };
    assert_eq!(run(0x9A_11E1, 4), run(0x9A_11E1, 8));
    assert_ne!(run(0x9A_11E1, 4), run(0x9A_11E2, 4));
}
