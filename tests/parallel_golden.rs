//! Golden-seed snapshot for the parallel radix router at n = 10⁶.
//!
//! `tests/dense_golden.rs` pins the dense engine's stream; this file pins
//! the per-agent engine's *parallel* round pipeline at full radix scale.
//! The constants ARE the reproducibility contract: a seeded million-agent
//! run over worker lanes must keep producing exactly these census counts
//! and message tallies across releases — and, because the parallel router
//! is bit-identical to the sequential paths by construction, the identical
//! constants must hold at every thread count, including one.  If this test
//! fails, the routing pipeline changed (redraw chain, packed-word layout,
//! scatter/resolve/emit order, RNG block reservation — anything), and every
//! seeded large-n result in the repository changed with it.

use breathe_paper as _;
use flip_model::{
    BinarySymmetricChannel, FaultSpec, Opinion, RumorAgent, Simulation, SimulationConfig,
    RADIX_MIN_N,
};

/// One snapshot run: census split and exact message accounting.
fn snapshot(n: usize, threads: usize, rounds: u64) -> (usize, usize, u64, u64, u64, u64) {
    let agents = RumorAgent::population(n, 0, n / 2);
    let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
    let config = SimulationConfig::new(n)
        .with_seed(0x9A_11E1)
        .with_reference(Opinion::One)
        .with_threads(threads);
    let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
    sim.run(rounds);
    let metrics = sim.metrics();
    (
        sim.census().active(),
        sim.census().holding(Opinion::One),
        metrics.messages_sent,
        metrics.messages_accepted,
        metrics.messages_collided,
        metrics.bits_flipped,
    )
}

#[test]
fn parallel_radix_golden_seed_snapshot_at_1e6() {
    // Half the million agents start informed, so every round is dense and
    // routes through the parallel radix scatter from round 0.
    let golden = (848_959, 739_092, 1_196_901, 895_338, 301_563, 268_698);
    assert_eq!(snapshot(1_000_000, 4, 2), golden);
    // Bit-identity across lane counts is part of the pinned contract.
    assert_eq!(snapshot(1_000_000, 1, 2), golden);
}

/// The n = 10⁷ smoke: one decade past the golden tier, the scale the
/// parallel round exists for.  Ignored by default — it wants a release
/// build and ~1 GB of buffers — and run explicitly (`-- --ignored`) by the
/// weekly large-n workflow.  No pinned constants at this tier; the contract
/// checked is thread-count bit-identity plus exact message conservation.
#[test]
#[ignore = "large-n smoke (release builds; run via the weekly large-n workflow)"]
fn parallel_radix_smoke_at_1e7() {
    let n = 10_000_000;
    let threaded = snapshot(n, 4, 1);
    assert_eq!(threaded, snapshot(n, 1, 1));
    let (active, _, sent, accepted, collided, _) = threaded;
    assert_eq!(sent, (n / 2) as u64, "every informed agent pushes");
    assert_eq!(sent, accepted + collided, "conservation");
    assert!(active >= n / 2, "informed agents never forget");
}

#[test]
fn fault_injected_runs_are_thread_invariant_at_radix_scale() {
    // Fault draws ride the reserved counter-mode RNG stream, so injecting
    // a tenth of the population as Byzantine-constant agents must not
    // break lane invariance: the same seed produces the same census,
    // metrics and fault plan at every thread count.  The faulty run must
    // also actually differ from the honest one (the injection is live) and
    // stay seed-sensitive (the plan is a stream, not a fixed prefix).
    let n = RADIX_MIN_N;
    let run = |seed: u64, threads: usize, faults: Option<FaultSpec>| {
        let agents = RumorAgent::population(n, 0, n / 2);
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let mut config = SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
            .with_threads(threads);
        if let Some(spec) = faults {
            config = config.with_faults(spec);
        }
        let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
        sim.run(3);
        let faulty: Vec<usize> = sim.fault_plan().map_or_else(Vec::new, |plan| {
            (0..n).filter(|&i| plan.is_faulty(i)).collect()
        });
        (sim.census(), sim.metrics().clone(), faulty)
    };
    let byz: FaultSpec = "byz:0.1".parse().expect("valid directive");
    let reference = run(0xFA17, 1, Some(byz));
    // The plan samples i.i.d. per agent, so the count is Binomial(n, 0.1):
    // a ±5% band around n/10 is ~60 standard deviations wide at this n.
    let faulty = reference.2.len();
    assert!(
        (n / 10).abs_diff(faulty) < n / 200,
        "byz:0.1 must draw about n/10 faulty agents, got {faulty}"
    );
    assert_eq!(run(0xFA17, 4, Some(byz)), reference, "threads = 4");
    assert_ne!(
        run(0xFA18, 1, Some(byz)),
        reference,
        "a neighbouring seed must diverge"
    );
    let honest = run(0xFA17, 1, None);
    assert!(honest.2.is_empty(), "no plan without a directive");
    assert_ne!(
        (honest.0, honest.1),
        (reference.0, reference.1.clone()),
        "injected faults must change the run"
    );
}

#[test]
fn parallel_radix_golden_snapshot_is_seed_sensitive() {
    // The snapshot pins a stream, not a coincidence: at the (cheaper) radix
    // crossover, a neighbouring seed must diverge while lane counts agree.
    let run = |seed: u64, threads: usize| {
        let n = RADIX_MIN_N;
        let agents = RumorAgent::population(n, 0, n / 2);
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(seed)
            .with_reference(Opinion::One)
            .with_threads(threads);
        let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
        sim.run(2);
        (sim.census().holding(Opinion::One), sim.metrics().clone())
    };
    assert_eq!(run(0x9A_11E1, 4), run(0x9A_11E1, 8));
    assert_ne!(run(0x9A_11E1, 4), run(0x9A_11E2, 4));
}
