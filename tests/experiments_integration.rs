//! Integration tests for the experiment harness: every experiment table can be
//! generated at a tiny scale and has the expected shape, and the headline
//! qualitative conclusions of the paper hold in the generated numbers.

use experiments::{specs, ExperimentConfig};

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        trials: 2,
        base_seed: 99,
        ..ExperimentConfig::quick()
    }
}

#[test]
fn e01_success_rates_are_high_everywhere() {
    let table = specs::e01_table(&tiny());
    // Last row is the fit; the others carry an all-correct rate in column 4.
    for row in &table.rows()[..table.len() - 1] {
        let fraction: f64 = row[3].parse().unwrap();
        assert!(fraction > 0.9, "row = {row:?}");
    }
    assert!(table.to_markdown().contains("E1"));
}

#[test]
fn e03_normalised_message_cost_is_bounded() {
    let table = specs::e03_table(&tiny());
    for row in table.rows() {
        let normalised: f64 = row[3].parse().unwrap();
        assert!(
            normalised > 0.1 && normalised < 500.0,
            "normalised messages out of range: {row:?}"
        );
    }
}

#[test]
fn e07_sampling_table_shows_the_boost_growing_with_delta() {
    let sampling = &specs::e07a_table(&tiny());
    let measured: Vec<f64> = sampling
        .rows()
        .iter()
        .map(|r| r[2].parse().unwrap())
        .collect();
    // Larger population bias gives a larger majority-correct probability.
    assert!(measured.last().unwrap() > measured.first().unwrap());
    assert!(measured.iter().all(|&m| m >= 0.4));
}

#[test]
fn e08_largest_most_biased_committee_reaches_near_consensus() {
    let table = specs::e08_table(&tiny());
    let last = table.rows().last().unwrap();
    let fraction: f64 = last[3].parse().unwrap();
    assert!(fraction > 0.8, "row = {last:?}");
}

#[test]
fn e10_breathe_rows_dominate_the_failing_baselines() {
    let table = specs::e10_table(&tiny());
    // Rows come in blocks of six per epsilon: breathe first, then baselines.
    let rows = table.rows();
    assert_eq!(rows.len() % 6, 0);
    for block in rows.chunks(6) {
        let breathe: f64 = block[0][3].parse().unwrap();
        let forwarding: f64 = block[1][3].parse().unwrap();
        let voter: f64 = block[5][3].parse().unwrap();
        assert!(breathe > forwarding, "block = {block:?}");
        assert!(breathe > voter, "block = {block:?}");
    }
}

#[test]
fn e12_sample_counts_scale_like_inverse_epsilon_squared() {
    let table = specs::e12_table(&tiny());
    let normalised: Vec<f64> = table.rows().iter().map(|r| r[2].parse().unwrap()).collect();
    let max = normalised.iter().cloned().fold(f64::MIN, f64::max);
    let min = normalised.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 10.0,
        "samples * eps^2 should be roughly constant: {normalised:?}"
    );
}
