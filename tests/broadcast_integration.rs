//! End-to-end integration tests for the noisy broadcast protocol
//! (Theorem 2.17), spanning the `flip-model` and `breathe` crates.

use breathe::{BroadcastProtocol, Multipliers, Params, Schedule, StageKind};
use flip_model::Opinion;

#[test]
fn broadcast_reaches_consensus_across_populations_and_noise_levels() {
    for &(n, epsilon) in &[(200usize, 0.35), (500, 0.3), (1_000, 0.25)] {
        let params = Params::practical(n, epsilon).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let outcome = protocol.run_with_seed(42).unwrap();
        assert!(
            outcome.fraction_correct > 0.95,
            "n={n}, eps={epsilon}: fraction_correct = {}",
            outcome.fraction_correct
        );
        assert_eq!(outcome.n, n);
        assert_eq!(outcome.total_rounds, protocol.schedule().total_rounds());
    }
}

#[test]
fn broadcast_success_rate_is_high_over_repeated_trials() {
    let params = Params::practical(400, 0.3).unwrap();
    let protocol = BroadcastProtocol::new(params, Opinion::Zero);
    let trials = 10;
    let successes = (0..trials)
        .filter(|&seed| protocol.run_with_seed(seed).unwrap().fraction_correct > 0.99)
        .count();
    assert!(
        successes >= trials as usize - 1,
        "only {successes}/{trials} trials reached near-consensus"
    );
}

#[test]
fn message_complexity_stays_within_a_constant_factor_of_n_log_n_over_eps_sq() {
    let epsilon = 0.25;
    for &n in &[300usize, 600, 1_200] {
        let params = Params::practical(n, epsilon).unwrap();
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let outcome = protocol.run_with_seed(7).unwrap();
        let scale = n as f64 * (n as f64).ln() / (epsilon * epsilon);
        let normalised = outcome.messages_sent as f64 / scale;
        assert!(
            normalised > 0.5 && normalised < 200.0,
            "n={n}: messages/scale = {normalised}"
        );
    }
}

#[test]
fn the_message_pattern_is_symmetric_in_the_broadcast_value() {
    // Symmetric algorithms (paper §1.3.4): whether the source holds 0 or 1 must
    // not change who speaks when.  With identical seeds the two executions must
    // therefore send exactly the same number of messages in every round.
    let params = Params::practical(300, 0.3).unwrap();
    let run = |correct: Opinion| {
        let protocol = BroadcastProtocol::new(params.clone(), correct);
        let mut sim = protocol.build_simulation(99).unwrap();
        let mut per_round = Vec::new();
        for _ in 0..protocol.schedule().total_rounds() {
            per_round.push(sim.step().metrics.messages_sent);
        }
        per_round
    };
    assert_eq!(run(Opinion::One), run(Opinion::Zero));
}

#[test]
fn stage1_produces_a_positive_bias_and_stage2_amplifies_it() {
    let params = Params::practical(600, 0.25).unwrap();
    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let detailed = protocol.run_detailed(5).unwrap();
    let outcome = &detailed.outcome;
    assert!(outcome.fraction_correct_after_stage1 > 0.5);
    assert!(outcome.fraction_correct >= outcome.fraction_correct_after_stage1);
    assert!(outcome.fraction_correct > 0.95);

    // The per-phase trajectory should (weakly) improve during Stage II.
    let spreading = protocol.schedule().spreading_phase_count();
    let stage2 = &detailed.fraction_correct_after_phase[spreading - 1..];
    let first = stage2.first().copied().unwrap();
    let last = stage2.last().copied().unwrap();
    assert!(last >= first);
}

#[test]
fn paper_strict_constants_still_produce_a_valid_schedule() {
    let params = Params::paper_strict(64, 0.4).unwrap();
    let schedule = Schedule::broadcast(&params);
    assert!(schedule.total_rounds() > 100_000);
    assert_eq!(schedule.phases()[0].kind, StageKind::Spreading);
    // We do not run it — the point is that the literal constants are representable.
}

#[test]
fn custom_multipliers_flow_through_to_the_schedule() {
    let multipliers = Multipliers {
        s_mult: 1.0,
        beta_mult: 2.0,
        f_mult: 2.5,
        gamma_mult: 4.0,
        extra_boost_phases: 1,
        final_mult: 2.0,
    };
    let params = Params::with_multipliers(1_000, 0.3, multipliers).unwrap();
    let default_params = Params::practical(1_000, 0.3).unwrap();
    assert!(params.total_rounds() < default_params.total_rounds());
    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let outcome = protocol.run_with_seed(3).unwrap();
    // Smaller constants still give a strong (if not always perfect) majority.
    assert!(
        outcome.fraction_correct > 0.8,
        "{}",
        outcome.fraction_correct
    );
}
