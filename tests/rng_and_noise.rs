//! Statistical and determinism coverage for the fast RNG core, the Lemire
//! bounded sampler and the geometric skip-sampling noise path.
//!
//! The chi-square tests run at deliberately non-power-of-two bounds (where a
//! naive modulo sampler is measurably biased), the golden-seed snapshot
//! pins the exact output stream (any change to the counter-mix core is a
//! breaking change for reproducibility and must be made consciously), and
//! the skip-vs-Bernoulli test certifies that fusing channel noise by
//! geometric skip-sampling is distributionally indistinguishable from one
//! Bernoulli draw per message.

use breathe_paper as _;
use flip_model::{
    BernoulliSkip, BinarySymmetricChannel, NoiselessChannel, Opinion, RumorAgent, SimRng,
    Simulation, SimulationConfig,
};
use rand::{Rng, RngCore};

/// Chi-square statistic of `draws` samples from `sample` over `bins` bins.
fn chi_square(bins: usize, draws: u32, mut sample: impl FnMut() -> usize) -> f64 {
    let mut counts = vec![0u32; bins];
    for _ in 0..draws {
        counts[sample()] += 1;
    }
    let expected = f64::from(draws) / bins as f64;
    counts
        .iter()
        .map(|&c| {
            let d = f64::from(c) - expected;
            d * d / expected
        })
        .sum()
}

/// A conservative acceptance threshold for a chi-square statistic with
/// `df` degrees of freedom: mean `df`, standard deviation `√(2·df)`; six
/// sigmas keeps the false-alarm rate far below one in a million.
fn chi_square_threshold(df: usize) -> f64 {
    df as f64 + 6.0 * (2.0 * df as f64).sqrt()
}

#[test]
fn gen_range_is_uniform_at_non_power_of_two_bounds() {
    for (seed, bound) in [(1u64, 7usize), (2, 1_000), (3, 4_099)] {
        let mut rng = SimRng::from_seed(seed);
        let draws = 200_000;
        let stat = chi_square(bound, draws, || rng.gen_range(0..bound));
        let threshold = chi_square_threshold(bound - 1);
        assert!(
            stat < threshold,
            "gen_range(0..{bound}): chi2 = {stat:.1} exceeds {threshold:.1}"
        );
    }
}

#[test]
fn gen_index_is_uniform_at_non_power_of_two_bounds() {
    for (seed, bound) in [(4u64, 7usize), (5, 1_000), (6, 4_099)] {
        let mut rng = SimRng::from_seed(seed);
        let draws = 200_000;
        let stat = chi_square(bound, draws, || rng.gen_index(bound));
        let threshold = chi_square_threshold(bound - 1);
        assert!(
            stat < threshold,
            "gen_index({bound}): chi2 = {stat:.1} exceeds {threshold:.1}"
        );
    }
}

#[test]
fn forked_streams_are_independent() {
    // Child streams forked from one master must not collide or correlate.
    let mut master = SimRng::from_seed(0xF0F0);
    let mut a = master.fork(0);
    let mut b = master.fork(1);

    // No identical words in lockstep ...
    let equal = (0..4_096).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(equal, 0, "forked streams repeat each other");

    // ... and XOR of the streams is bit-balanced (a linear dependence
    // between the streams would skew this badly).
    let mut a = master.fork(2);
    let mut b = master.fork(3);
    let samples = 4_096u32;
    let ones: u32 = (0..samples)
        .map(|_| (a.next_u64() ^ b.next_u64()).count_ones())
        .sum();
    let total = f64::from(samples) * 64.0;
    let deviation = (f64::from(ones) - total / 2.0).abs() / (total / 4.0).sqrt();
    assert!(
        deviation < 6.0,
        "XOR bit balance off by {deviation:.1} sigma"
    );
}

#[test]
fn golden_seed_snapshot_pins_the_stream() {
    // These constants ARE the reproducibility contract: identical seeds must
    // keep producing identical simulations across releases.  If this test
    // fails, the RNG core changed and every seeded result in the repository
    // (experiment tables, baselines) silently changed with it.
    let mut rng = SimRng::from_seed(0x5EED_CAFE);
    let expected: [u64; 8] = [
        0xF99A_DF6F_A4C6_2E7F,
        0x798D_83F8_8D46_69C9,
        0x0236_F7FF_E435_29EE,
        0x3B99_9931_BD98_7747,
        0x7A9B_D937_9A23_E55C,
        0xFD5C_3F0F_4A5D_7070,
        0x7D46_DB09_7F97_9A9A,
        0xFE00_A170_0E77_8392,
    ];
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "word {i} diverged");
    }

    let mut rng = SimRng::from_seed(0);
    let expected_zero: [u64; 4] = [
        0x0E62_CC00_DB31_43E9,
        0x225B_1632_D9D9_0992,
        0x97E6_0312_31DA_56C4,
        0xC63E_52A1_998E_FED3,
    ];
    for (i, &want) in expected_zero.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "word {i} of seed 0 diverged");
    }
}

/// Walks `stream_len` Bernoulli trials with the geometric skip-sampler and
/// returns how many successes ("flips") it placed.
fn flips_by_skip(skip: &BernoulliSkip, rng: &mut SimRng, stream_len: usize) -> u64 {
    let mut flips = 0u64;
    let mut position = skip.gap(rng);
    while position < stream_len {
        flips += 1;
        position = position.saturating_add(1).saturating_add(skip.gap(rng));
    }
    flips
}

/// Per-message Bernoulli reference: one `chance(p)` draw per trial.
fn flips_by_bernoulli(p: f64, rng: &mut SimRng, stream_len: usize) -> u64 {
    (0..stream_len).filter(|_| rng.chance(p)).count() as u64
}

#[test]
fn geometric_skip_matches_per_message_bernoulli_in_distribution() {
    // Chernoff-style comparison, same style as tests/dense_equivalence.rs:
    // over many independent rounds the mean flip counts of the two samplers
    // must agree within O(σ/√trials), and so must their variances (the
    // fused path must be Binomial(m, p), not merely mean-matched).
    let stream_len = 2_000usize;
    let trials = 400u32;
    for (seed, p) in [(10u64, 0.05f64), (11, 0.3), (12, 0.5)] {
        let skip = BernoulliSkip::new(p).unwrap();
        let mut rng = SimRng::from_seed(seed);

        let mut skip_counts = Vec::with_capacity(trials as usize);
        let mut bern_counts = Vec::with_capacity(trials as usize);
        for _ in 0..trials {
            skip_counts.push(flips_by_skip(&skip, &mut rng, stream_len) as f64);
            bern_counts.push(flips_by_bernoulli(p, &mut rng, stream_len) as f64);
        }

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64], m: f64| {
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
        };

        let m = stream_len as f64;
        let expected_mean = m * p;
        let expected_var = m * p * (1.0 - p);
        let sigma_of_mean = (expected_var / f64::from(trials)).sqrt();

        let skip_mean = mean(&skip_counts);
        let bern_mean = mean(&bern_counts);
        // Each sampler against theory, six sigmas.
        assert!(
            (skip_mean - expected_mean).abs() < 6.0 * sigma_of_mean,
            "p = {p}: skip mean {skip_mean:.2} vs {expected_mean:.2}"
        );
        assert!(
            (bern_mean - expected_mean).abs() < 6.0 * sigma_of_mean,
            "p = {p}: bernoulli mean {bern_mean:.2} vs {expected_mean:.2}"
        );
        // And against each other.
        assert!(
            (skip_mean - bern_mean).abs() < 6.0 * sigma_of_mean * std::f64::consts::SQRT_2,
            "p = {p}: skip mean {skip_mean:.2} vs bernoulli mean {bern_mean:.2}"
        );
        // Variances agree within the (generous) sampling error of a
        // variance estimate over `trials` rounds.
        let skip_var = var(&skip_counts, skip_mean);
        assert!(
            (skip_var / expected_var - 1.0).abs() < 0.5,
            "p = {p}: skip variance {skip_var:.1} vs expected {expected_var:.1}"
        );
    }
}

#[test]
fn skip_sampler_handles_degenerate_streams() {
    let skip = BernoulliSkip::new(0.5).unwrap();
    let mut rng = SimRng::from_seed(42);
    // Empty stream: never flips.
    assert_eq!(flips_by_skip(&skip, &mut rng, 0), 0);
    // A one-message stream flips about half the time.
    let flips: u64 = (0..10_000).map(|_| flips_by_skip(&skip, &mut rng, 1)).sum();
    assert!((4_700..5_300).contains(&flips), "flips = {flips}");
}

#[test]
fn skip_sampler_guards_degenerate_crossovers() {
    // p = 0 (both signed zeros): no sampler exists, so "skip everything"
    // costs zero RNG draws — the engine-level proof is
    // `zero_crossover_channel_is_bit_identical_to_noiseless` below.
    assert!(BernoulliSkip::new(0.0).is_none());
    assert!(BernoulliSkip::new(-0.0).is_none());

    // Subnormal and denormal-adjacent p: `1 − p` rounds to exactly 1.0, and
    // a sampler built from it would compute `1 / ln(1) = ∞` gaps.  The
    // constructor must refuse instead.
    assert!(BernoulliSkip::new(5e-324).is_none(), "smallest subnormal");
    assert!(BernoulliSkip::new(f64::MIN_POSITIVE).is_none());
    assert!(BernoulliSkip::new(1e-17).is_none());

    // The first p whose `1 − p` is representably below 1.0 is accepted and
    // produces finite (if astronomically long) gaps.
    let skip = BernoulliSkip::new(2e-16).expect("representable keep probability");
    let mut rng = SimRng::from_seed(7);
    for _ in 0..1_000 {
        let _ = skip.gap(&mut rng); // must not panic or hang
    }
}

#[test]
fn skip_sampler_p_at_and_above_one_half_is_finite_and_calibrated() {
    // The p ≥ 0.5 boundary runs through the same inlined `ln` as small p;
    // gaps must stay finite, non-negative and geometrically distributed all
    // the way to the brink of p = 1.
    for p in [0.5, 0.75, 0.999, 1.0 - 1e-9] {
        let skip = BernoulliSkip::new(p).expect("p in [0.5, 1) is valid");
        let mut rng = SimRng::from_seed(0xB0B ^ p.to_bits());
        let draws = 20_000u32;
        let total: u64 = (0..draws).map(|_| skip.gap(&mut rng) as u64).sum();
        let max: u64 = (0..1_000).map(|_| skip.gap(&mut rng) as u64).max().unwrap();
        assert!(max < 1 << 40, "p = {p}: absurd gap {max}");
        let mean = total as f64 / f64::from(draws);
        let expected = (1.0 - p) / p;
        assert!(
            (mean - expected).abs() < 0.02 + expected * 0.2,
            "p = {p}: mean gap {mean} vs expected {expected}"
        );
    }
    // p ≥ 1 needs no sampler (an always-flip channel keeps the exact
    // per-message path) and must be rejected, NaN included.
    assert!(BernoulliSkip::new(1.0).is_none());
    assert!(BernoulliSkip::new(1.5).is_none());
    assert!(BernoulliSkip::new(f64::NAN).is_none());
    assert!(BernoulliSkip::new(f64::INFINITY).is_none());
}

/// A channel reporting a fixed crossover so small that `1 − p` rounds to
/// 1.0 — the degenerate case the skip-sampler refuses to model.
struct SubnormalNoise;

impl flip_model::Channel for SubnormalNoise {
    fn transmit(&self, message: Opinion, rng: &mut SimRng) -> Opinion {
        if rng.chance(5e-324) {
            message.flipped()
        } else {
            message
        }
    }
    fn crossover(&self) -> f64 {
        5e-324
    }
    fn fixed_crossover(&self) -> Option<f64> {
        Some(5e-324)
    }
}

fn run_census_trace<C: flip_model::Channel>(channel: C, seed: u64) -> (Vec<usize>, u64) {
    let n = 300;
    let agents = RumorAgent::population(n, 0, 3);
    let config = SimulationConfig::new(n).with_seed(seed);
    let mut sim = Simulation::new(agents, channel, config).unwrap();
    let mut actives = Vec::new();
    for _ in 0..60 {
        actives.push(sim.step().census_active);
    }
    (actives, sim.metrics().bits_flipped)
}

#[test]
fn zero_crossover_channel_is_bit_identical_to_noiseless() {
    // p = 0 must not merely flip nothing — it must consume *no* noise
    // randomness at all, so a zero-crossover binary symmetric channel and
    // the noiseless channel produce bit-identical trajectories.
    let (noiseless, flips0) = run_census_trace(NoiselessChannel, 0xD00D);
    let zero = BinarySymmetricChannel::new(0.0).unwrap();
    let (zeroed, flips1) = run_census_trace(zero, 0xD00D);
    assert_eq!(noiseless, zeroed);
    assert_eq!((flips0, flips1), (0, 0));
}

#[test]
fn subnormal_crossover_runs_noiselessly_without_nan() {
    // A subnormal fixed crossover cannot build a skip-sampler; the engine
    // must treat it as noiseless (flip probability 5e-324 is unobservable
    // in any feasible run) rather than fusing an infinite-gap sampler.
    let (subnormal, flips) = run_census_trace(SubnormalNoise, 0xD11D);
    let (noiseless, _) = run_census_trace(NoiselessChannel, 0xD11D);
    assert_eq!(subnormal, noiseless);
    assert_eq!(flips, 0);
}
