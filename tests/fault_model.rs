//! Cross-engine fault-injection contracts at integration scale.
//!
//! The unit suites in `flip_model::faults`, `engine` and `hybrid` pin the
//! role semantics; this file pins the system-level behaviour the E13
//! family rests on: a Byzantine minority slows but does not stop rumor
//! spreading, crashed agents go dark at their crash round, and the hybrid
//! engine completes a million-agent faulty run (the weekly large-n leg).

use breathe_paper as _;
use flip_model::{
    Agent, BinarySymmetricChannel, FaultSpec, HybridSimulation, NoiselessChannel, Opinion,
    RumorAgent, RumorProtocol, Simulation, SimulationConfig, StratifiedPopulation,
};

#[test]
fn byzantine_minority_slows_but_does_not_stop_the_rumor() {
    let n = 2_000;
    let run = |faults: Option<FaultSpec>| {
        let agents = RumorAgent::population(n, 0, 50);
        let channel = BinarySymmetricChannel::from_epsilon(0.3).expect("valid epsilon");
        let mut config = SimulationConfig::new(n)
            .with_seed(0xFA_01)
            .with_reference(Opinion::One);
        if let Some(spec) = faults {
            config = config.with_faults(spec);
        }
        let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
        sim.run(60);
        let plan = sim.fault_plan().cloned();
        let honest_active = (0..n)
            .filter(|&i| {
                plan.as_ref().is_none_or(|p| !p.is_faulty(i)) && sim.agents()[i].is_active()
            })
            .count();
        let honest = n - plan.as_ref().map_or(0, |p| p.faulty_count());
        (honest_active, honest)
    };
    let (honest_active, honest) = run(Some("byz:0.1".parse().unwrap()));
    let (fault_free_active, fault_free) = run(None);
    assert_eq!(fault_free, n);
    assert!(
        fault_free_active > n * 9 / 10,
        "the honest baseline must spread: {fault_free_active}/{n}"
    );
    // Byzantine-constant agents push the wrong bit but cannot silence the
    // honest majority: most honest agents still learn the rumor.
    assert!(
        honest_active > honest / 2,
        "a Byzantine tenth must not stop the spread: {honest_active}/{honest}"
    );
}

#[test]
fn crashed_agents_go_dark_at_their_round() {
    // crash:F@R: before round R the faulty set behaves honestly; from R on
    // it neither sends nor receives.  On a noiseless channel with every
    // agent informed, message counts expose the silence exactly.
    let n = 1_000;
    let spec: FaultSpec = "crash:0.2@3".parse().expect("valid directive");
    let agents = RumorAgent::population(n, 0, n);
    let config = SimulationConfig::new(n)
        .with_seed(0xFA_02)
        .with_reference(Opinion::One)
        .with_faults(spec);
    let mut sim = Simulation::new(agents, NoiselessChannel, config).expect("valid parameters");
    let faulty = sim.fault_plan().expect("plan exists").faulty_count() as u64;
    sim.run(3);
    let before = sim.metrics().messages_sent;
    assert_eq!(
        before,
        3 * n as u64,
        "everyone sends before the crash round"
    );
    sim.run(2);
    let after = sim.metrics().messages_sent - before;
    assert_eq!(
        after,
        2 * (n as u64 - faulty),
        "crashed agents must stop sending at round 3"
    );
}

/// The weekly large-n completion leg: a million-agent hybrid run with a
/// five-percent Byzantine minority concentrated in the tracked prefix.
/// Ignored by default — it wants a release build — and run explicitly
/// (`-- --ignored`) by the weekly large-n workflow.
#[test]
#[ignore = "large-n smoke (release builds; run via the weekly large-n workflow)"]
fn byzantine_hybrid_million_completes() {
    let n = 1_000_000;
    let k = 100_000;
    let spec: FaultSpec = "byz:0.05".parse().expect("valid directive");
    let run = |threads: usize| {
        let tracked = RumorAgent::population(k, 0, k / 2);
        let bulk = StratifiedPopulation::single(RumorProtocol::population(
            (n - k) as u64,
            0,
            ((n - k) / 2) as u64,
        ));
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(0xFA_03)
            .with_reference(Opinion::One)
            .with_threads(threads)
            .with_faults(spec);
        let mut sim = HybridSimulation::new(tracked, RumorProtocol, channel, bulk, config)
            .expect("valid simulation");
        sim.run(4);
        assert_eq!(
            sim.fault_plan().expect("plan exists").faulty_count(),
            n / 20
        );
        (sim.census(), sim.metrics().clone())
    };
    let threaded = run(4);
    assert_eq!(threaded, run(1), "faulty hybrid runs are lane-invariant");
    let (census, metrics) = threaded;
    assert!(census.active() >= n / 2, "informed agents never forget");
    assert!(metrics.messages_sent > 0);
}
