//! Golden-seed snapshot tests for the dense (counts-based) engine.
//!
//! The per-agent RNG has a snapshot in `tests/rng_and_noise.rs`; this file
//! is the dense engine's counterpart.  The constants below ARE the
//! reproducibility contract: identical seeds must keep producing identical
//! dense simulations across releases.  If one of these tests fails, the
//! dense round pipeline changed — binomial sampler, state-cell iteration
//! order, RNG stream consumption, collision accounting, anything — and every
//! seeded dense result in the repository (E1-D/E8-D tables, sweep stores,
//! CI smoke exports) silently changed with it.  Binomial-sampler drift in
//! particular (BINV/BTPE cutovers, rejection-loop tweaks) passes every
//! distributional test; only an exact snapshot catches it.

use breathe_paper as _;
use flip_model::{
    BinarySymmetricChannel, DenseSimulation, MajoritySamplerProtocol, Opinion, RumorProtocol,
    SimulationConfig,
};

#[test]
fn rumor_golden_seed_snapshot_pins_the_dense_pipeline() {
    let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
    let population = RumorProtocol::population(10_000, 0, 100);
    let config = SimulationConfig::new(10_000)
        .with_seed(0xD0_5EED)
        .with_reference(Opinion::One);
    let mut sim =
        DenseSimulation::new(RumorProtocol, channel, population, config).expect("valid parameters");
    sim.run(30);

    // Exact post-run state counts: [uninformed, active-Zero, active-One].
    assert_eq!(sim.population().counts(), &[0, 4_507, 5_493]);
    assert_eq!(sim.census().active(), 10_000);
    assert_eq!(sim.census().fraction_correct(Opinion::One), 0.5493);

    // Exact message accounting across all 30 rounds.
    let metrics = sim.metrics();
    assert_eq!(metrics.rounds, 30);
    assert_eq!(metrics.messages_sent, 233_406);
    assert_eq!(metrics.messages_accepted, 151_167);
    assert_eq!(metrics.messages_collided, 82_239);
    assert_eq!(metrics.bits_flipped, 45_062);
}

#[test]
fn majority_sampler_golden_seed_snapshot_pins_the_boost_pipeline() {
    // Two full phases of 23-sample majority boosting at n = 10⁶ — the E8-D
    // workload shape, exercising the multi-state dense path (600 counter
    // states) and the binomial sampler's large-n regime.
    let sampler = MajoritySamplerProtocol::new(23);
    let population = sampler.population(450_000, 550_000);
    let channel = BinarySymmetricChannel::from_epsilon(0.3).expect("valid epsilon");
    let config = SimulationConfig::new(1_000_000)
        .with_seed(0xB1A5)
        .with_reference(Opinion::One);
    let mut sim =
        DenseSimulation::new(sampler, channel, population, config).expect("valid parameters");
    sim.run(46);

    // After two phases every agent sits in a fresh-phase state: the exact
    // split between the Zero-camp base state (0) and the One-camp base
    // state (300) is the snapshot.
    let counts = sim.population().counts();
    assert_eq!(counts.len(), 600);
    let nonzero: Vec<(usize, u64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (i, c))
        .collect();
    assert_eq!(nonzero, vec![(0, 321_509), (300, 678_491)]);
    assert_eq!(sim.census().fraction_correct(Opinion::One), 0.678_491);

    let metrics = sim.metrics();
    assert_eq!(metrics.messages_sent, 46_000_000);
    assert_eq!(metrics.messages_accepted, 29_084_529);
    assert_eq!(metrics.bits_flipped, 5_818_880);
}

#[test]
fn dense_snapshots_are_seed_sensitive() {
    // The snapshots above pin a *stream*, not a coincidence: a neighbouring
    // seed must produce a different trajectory.
    let run = |seed: u64| {
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let population = RumorProtocol::population(10_000, 0, 100);
        let config = SimulationConfig::new(10_000)
            .with_seed(seed)
            .with_reference(Opinion::One);
        let mut sim = DenseSimulation::new(RumorProtocol, channel, population, config)
            .expect("valid parameters");
        sim.run(30);
        (
            sim.population().counts().to_vec(),
            sim.metrics().messages_sent,
        )
    };
    let (counts_a, sent_a) = run(0xD0_5EED);
    let (counts_b, sent_b) = run(0xD0_5EEE);
    assert_ne!((counts_a, sent_a), (counts_b, sent_b));
}
