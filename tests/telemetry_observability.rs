//! Observability contracts: fault accounting in [`Metrics`], telemetry
//! bit-neutrality, and trace coverage on the hybrid backend.
//!
//! The telemetry crate's unit suite pins the recorder mechanics; this file
//! pins the system-level promises: enabling telemetry never perturbs a
//! seeded run (timing reads the wall clock, never the RNG stream), the
//! fault counters in `Metrics` account for every interception, and the
//! hybrid engine records activations and snapshots for its tracked prefix.

use breathe_paper as _;
use flip_model::{
    Agent, BinarySymmetricChannel, Event, HybridSimulation, Metrics, NoiselessChannel, Opinion,
    Phase, RumorAgent, RumorProtocol, Simulation, SimulationConfig, StratifiedPopulation,
};

/// Pinned fault accounting on a seeded crash run: `crash:0.2@3` over 1000
/// fully informed agents silences the sampled faulty set from round 3 on,
/// so six rounds give exactly 3 × |faulty| forced (silenced) sends and
/// crashed agent-rounds, while the suppressed-delivery count follows the
/// seeded routing.
#[test]
fn crash_fault_accounting_is_pinned_on_a_seeded_run() {
    let n = 1_000;
    let rounds = 6u64;
    let run = || {
        let agents = RumorAgent::population(n, 0, n);
        let config = SimulationConfig::new(n)
            .with_seed(0xFA_04)
            .with_faults("crash:0.2@3".parse().expect("valid directive"));
        let mut sim = Simulation::new(agents, NoiselessChannel, config).expect("valid parameters");
        let faulty = sim.fault_plan().expect("plan exists").faulty_count() as u64;
        sim.run(rounds);
        (faulty, sim.metrics().clone())
    };
    let (faulty, metrics) = run();
    assert!(faulty > 0, "a fifth of 1000 agents samples non-empty");
    assert_eq!(
        metrics.forced_sends,
        3 * faulty,
        "one silencing per crashed agent-round"
    );
    assert_eq!(metrics.crashed_agent_rounds, 3 * faulty);
    assert!(
        metrics.suppressed_deliveries > 0,
        "messages routed to crashed agents must be suppressed"
    );
    assert!(
        metrics.suppressed_deliveries < metrics.messages_accepted,
        "honest agents still receive"
    );
    // The interception counters ride the same seeded determinism as the
    // message counters: a re-run reproduces them bit for bit.
    assert_eq!((faulty, metrics), run());
}

/// Byzantine roles force a send every round and never accept a delivery;
/// no agent ever counts as crashed.
#[test]
fn byzantine_fault_accounting_separates_forced_from_crashed() {
    let n = 500;
    let rounds = 8u64;
    let agents = RumorAgent::population(n, 0, n);
    let config = SimulationConfig::new(n)
        .with_seed(0xFA_05)
        .with_faults("byz:0.1".parse().expect("valid directive"));
    let mut sim = Simulation::new(agents, NoiselessChannel, config).expect("valid parameters");
    sim.run(rounds);
    let metrics: &Metrics = sim.metrics();
    let faulty = sim.fault_plan().expect("plan exists").faulty_count() as u64;
    assert!(faulty > 0, "a tenth of 500 agents samples non-empty");
    assert_eq!(
        metrics.forced_sends,
        rounds * faulty,
        "every Byzantine agent-round injects"
    );
    assert_eq!(
        metrics.crashed_agent_rounds, 0,
        "byzantine agents never crash"
    );
    assert!(
        metrics.suppressed_deliveries > 0,
        "byzantine roles are deaf"
    );
}

/// The load-bearing telemetry contract: an instrumented run's summaries are
/// bit-identical to an uninstrumented one — phase timing reads the
/// monotonic clock, never the simulation RNG.
#[test]
fn telemetry_enabled_runs_are_bit_identical_to_disabled_runs() {
    let n = 4_096;
    let rounds = 20;
    let run = |telemetry: bool, threads: usize| {
        let agents = RumorAgent::population(n, 0, 64);
        let channel = BinarySymmetricChannel::from_epsilon(0.25).expect("valid epsilon");
        let config = SimulationConfig::new(n)
            .with_seed(0x7E1E)
            .with_reference(Opinion::One)
            .with_threads(threads);
        let mut sim = Simulation::new(agents, channel, config).expect("valid parameters");
        if telemetry {
            sim.enable_telemetry();
        }
        let summaries: Vec<_> = (0..rounds).map(|_| sim.step()).collect();
        let recorder = sim.take_telemetry();
        (summaries, recorder)
    };
    for threads in [1, 3] {
        let (plain, none) = run(false, threads);
        let (instrumented, recorder) = run(true, threads);
        assert_eq!(plain, instrumented, "threads = {threads}");
        assert!(none.is_none(), "telemetry off yields no recorder");
        let recorder = recorder.expect("telemetry on yields a recorder");
        for phase in [Phase::RngReserve, Phase::ProtocolStep, Phase::NoiseMerge] {
            assert_eq!(
                recorder.phases().get(phase).count,
                rounds,
                "{phase} timed once per round (threads = {threads})"
            );
        }
        assert!(
            recorder.phases().get(Phase::ProtocolStep).total_ns > 0,
            "wall time accumulates"
        );
    }
}

/// Hybrid telemetry: per-message `Channel::transmit` draws on the tracked
/// path are counted, phases are timed once per round, and enabling the
/// instrumentation leaves the seeded run untouched.
#[test]
fn hybrid_telemetry_counts_tracked_corrections_without_perturbing_the_run() {
    let n = 20_000u64;
    let tracked = 64usize;
    let rounds = 30;
    let run = |telemetry: bool| {
        let agents = RumorAgent::population(tracked, 0, tracked);
        let bulk =
            StratifiedPopulation::single(RumorProtocol::population(n - tracked as u64, 0, 0));
        let channel = BinarySymmetricChannel::from_epsilon(0.2).expect("valid epsilon");
        let config = SimulationConfig::new(n as usize).with_seed(0x7E1F);
        let mut sim = HybridSimulation::new(agents, RumorProtocol, channel, bulk, config)
            .expect("valid parameters");
        if telemetry {
            sim.enable_telemetry();
        }
        let summaries: Vec<_> = (0..rounds).map(|_| sim.step()).collect();
        let recorder = sim.take_telemetry();
        (summaries, recorder)
    };
    let (plain, _) = run(false);
    let (instrumented, recorder) = run(true);
    assert_eq!(plain, instrumented, "telemetry must not touch the RNG");
    let recorder = recorder.expect("telemetry on yields a recorder");
    assert!(
        recorder.event(Event::HybridTrackedCorrections) > 0,
        "tracked deliveries draw per-message channel noise"
    );
    for phase in [Phase::ProtocolStep, Phase::NoiseMerge, Phase::CensusApply] {
        assert_eq!(recorder.phases().get(phase).count, rounds, "{phase}");
    }
}

/// TraceRecorder on the hybrid backend: activations index the tracked
/// prefix, snapshots cover the whole split population.
#[test]
fn hybrid_trace_records_tracked_activations_and_population_snapshots() {
    let n = 10_000u64;
    let tracked = 32usize;
    // No tracked agent starts informed: every activation seen below is a
    // real first delivery.
    let agents = RumorAgent::population(tracked, 0, 0);
    let bulk = StratifiedPopulation::single(RumorProtocol::population(n - tracked as u64, 0, 100));
    let channel = BinarySymmetricChannel::from_epsilon(0.3).expect("valid epsilon");
    let config = SimulationConfig::new(n as usize)
        .with_seed(0x7E20)
        .with_reference(Opinion::One)
        .with_history(true)
        .with_activation_trace(true);
    let mut sim = HybridSimulation::new(agents, RumorProtocol, channel, bulk, config)
        .expect("valid parameters");
    let executed = sim.run_until(200, |s| {
        s.tracked().iter().filter(|a| a.opinion().is_some()).count() == tracked
    });
    assert!(executed < 200, "the rumor reaches every tracked agent");

    let trace = sim.trace();
    assert_eq!(
        trace.history().len(),
        executed as usize,
        "one snapshot per round"
    );
    let last = trace.history().last().expect("non-empty history");
    assert_eq!(
        last.active,
        sim.census().active(),
        "snapshots track the full census"
    );
    assert!(last.correct.is_some(), "reference configured");

    assert_eq!(trace.activation_rounds().len(), tracked);
    for idx in 0..tracked {
        let round = trace
            .activation_round(idx)
            .expect("every tracked agent was activated");
        assert!(round < executed, "activation within the executed window");
    }
    // Monotone spread: the first activation precedes the last.
    let first = (0..tracked).filter_map(|i| trace.activation_round(i)).min();
    assert!(first.expect("non-empty") < executed);
}
