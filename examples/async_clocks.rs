//! Removing the global clock (paper §3): the same broadcast succeeds when
//! agents' clocks start out of sync, at an additive `O(log² n)` round cost.
//!
//! ```text
//! cargo run --release --example async_clocks
//! ```

use breathe::{AsyncBroadcastProtocol, AsyncVariant, BroadcastProtocol, Params};
use flip_model::Opinion;

fn main() -> Result<(), flip_model::FlipError> {
    let n = 1_000;
    let epsilon = 0.25;
    let params = Params::practical(n, epsilon)?;
    let correct = Opinion::One;

    let sync_outcome = BroadcastProtocol::new(params.clone(), correct).run_with_seed(3)?;
    println!(
        "fully synchronous   : {:>6} rounds, fraction correct {:.4}",
        sync_outcome.total_rounds, sync_outcome.fraction_correct
    );

    let d = 2 * (n as f64).log2().ceil() as u64;
    let offsets = AsyncBroadcastProtocol::new(
        params.clone(),
        correct,
        AsyncVariant::BoundedOffsets { max_offset: d },
    )
    .run_with_seed(3)?;
    println!(
        "clock offsets < {d:>3} : {:>6} rounds, fraction correct {:.4}, overhead {} rounds",
        offsets.total_rounds,
        offsets.fraction_correct,
        offsets.overhead_rounds()
    );

    let resync = AsyncBroadcastProtocol::new(params, correct, AsyncVariant::Resynchronised)
        .run_with_seed(3)?;
    let ln_n = (n as f64).ln();
    println!(
        "arbitrary skew      : {:>6} rounds, fraction correct {:.4}, overhead {} rounds (ln^2 n = {:.0})",
        resync.total_rounds,
        resync.fraction_correct,
        resync.overhead_rounds(),
        ln_n * ln_n
    );

    println!();
    println!(
        "Theorem 3.1: both clockless variants stay correct and pay only an additive \
         O(log^2 n) in rounds; the message complexity is unchanged."
    );
    Ok(())
}
