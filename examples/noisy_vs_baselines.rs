//! Baseline comparison (paper §1.6): why the obvious strategies fail in the
//! Flip model while breathe-before-speaking succeeds.
//!
//! ```text
//! cargo run --release --example noisy_vs_baselines
//! ```
//!
//! Every protocol gets the same setup (one informed source, `n` agents, noise
//! margin `ε`) and the same round budget as the breathe protocol.

use baselines::{
    chain_correct_probability, ForwardingProtocol, NoisyVoterProtocol, TwoChoicesProtocol,
    WaitForSourceProtocol,
};
use breathe::{BroadcastProtocol, Params};
use flip_model::Opinion;

fn main() -> Result<(), flip_model::FlipError> {
    let n = 1_000;
    let epsilon = 0.15;
    let correct = Opinion::One;
    let params = Params::practical(n, epsilon)?;
    let budget = params.total_rounds();

    println!("n = {n}, eps = {epsilon}, round budget = {budget}");
    println!("| protocol | fraction correct | unanimous |");
    println!("|----------|------------------|-----------|");

    let breathe_outcome = BroadcastProtocol::new(params, correct).run_with_seed(5)?;
    println!(
        "| breathe (this paper) | {:>16.4} | {:>9} |",
        breathe_outcome.fraction_correct, breathe_outcome.all_correct
    );

    let forwarding = ForwardingProtocol::new(n, epsilon, budget)?.run_with_seed(correct, 5)?;
    println!(
        "| immediate forwarding | {:>16.4} | {:>9} |",
        forwarding.fraction_correct, forwarding.all_correct
    );

    let wait = WaitForSourceProtocol::new(n, epsilon, budget)?.run_with_seed(correct, 5)?;
    println!(
        "| wait for source      | {:>16.4} | {:>9} |",
        wait.fraction_correct, wait.all_correct
    );

    let two_choices =
        TwoChoicesProtocol::new(n, epsilon, budget)?.run_with_seed(correct, n / 2 + 1, 5)?;
    println!(
        "| two-choices majority | {:>16.4} | {:>9} |",
        two_choices.fraction_correct, two_choices.all_correct
    );

    let voter = NoisyVoterProtocol::new(n, epsilon, budget)?.run_with_seed(correct, 5)?;
    println!(
        "| noisy voter + zealot | {:>16.4} | {:>9} |",
        voter.fraction_correct, voter.all_correct
    );

    println!();
    println!("why forwarding fails: reliability of a bit relayed over c hops (eps = {epsilon}):");
    for hops in [1u32, 2, 4, 8, 12] {
        println!(
            "  {hops:>2} hops -> Pr[correct] = {:.4}",
            chain_correct_probability(epsilon, hops)
        );
    }
    Ok(())
}
