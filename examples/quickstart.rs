//! Quickstart: broadcast one bit through a noisy, anonymous population.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A single source agent knows the correct opinion `B = 1`.  Every message in
//! the system is a single bit and is flipped with probability `1/2 − ε` in
//! transit, yet after `O(log n / ε²)` rounds the whole population holds `B`.

use breathe::{BroadcastProtocol, Params};
use flip_model::Opinion;

fn main() -> Result<(), flip_model::FlipError> {
    let n = 2_000;
    let epsilon = 0.2; // every bit is flipped with probability 0.3

    let params = Params::practical(n, epsilon)?;
    println!(
        "population n = {n}, noise margin eps = {epsilon} (flip probability {})",
        0.5 - epsilon
    );
    println!(
        "schedule: {} Stage I rounds + {} Stage II rounds = {} rounds total",
        params.stage1_rounds(),
        params.stage2_rounds(),
        params.total_rounds()
    );

    let protocol = BroadcastProtocol::new(params, Opinion::One);
    let outcome = protocol.run_with_seed(2_024)?;

    println!(
        "after Stage I: {} / {n} agents activated, fraction correct {:.3}",
        outcome.active_after_stage1, outcome.fraction_correct_after_stage1
    );
    println!(
        "after Stage II: fraction correct {:.4} ({}), using {} single-bit messages",
        outcome.fraction_correct,
        if outcome.all_correct {
            "full consensus"
        } else {
            "not yet unanimous"
        },
        outcome.messages_sent
    );
    println!(
        "normalised cost: {:.2} rounds per (ln n / eps^2), {:.2} bits per agent per (ln n / eps^2)",
        outcome.total_rounds as f64 / ((n as f64).ln() / (epsilon * epsilon)),
        outcome.messages_sent as f64 / (n as f64 * (n as f64).ln() / (epsilon * epsilon))
    );
    Ok(())
}
