//! Scaling demo: how the round and message cost of noisy broadcast grows with
//! the population size and the noise level (Theorem 2.17).
//!
//! ```text
//! cargo run --release --example broadcast_scaling
//! ```
//!
//! The protocol's cost should track `log n / ε²`: doubling the population adds
//! a constant number of rounds, while halving `ε` quadruples them.

use analysis::fitting::fit_linear;
use breathe::{BroadcastProtocol, Params};
use flip_model::Opinion;

fn main() -> Result<(), flip_model::FlipError> {
    println!("== rounds vs n at eps = 0.25 ==");
    let epsilon = 0.25;
    let mut ln_ns = Vec::new();
    let mut rounds = Vec::new();
    for n in [250usize, 500, 1_000, 2_000, 4_000] {
        let params = Params::practical(n, epsilon)?;
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let outcome = protocol.run_with_seed(1)?;
        println!(
            "n = {n:>5}: {} rounds, {:>9} bits, fraction correct {:.3}",
            outcome.total_rounds, outcome.messages_sent, outcome.fraction_correct
        );
        ln_ns.push((n as f64).ln());
        rounds.push(outcome.total_rounds as f64);
    }
    if let Some(fit) = fit_linear(&ln_ns, &rounds) {
        println!(
            "linear fit rounds ~ {:.1} * ln(n) + {:.1}   (R^2 = {:.4})",
            fit.slope, fit.intercept, fit.r_squared
        );
    }

    println!("\n== rounds vs eps at n = 1000 ==");
    let n = 1_000;
    for epsilon in [0.4, 0.3, 0.2, 0.15, 0.1] {
        let params = Params::practical(n, epsilon)?;
        let protocol = BroadcastProtocol::new(params, Opinion::One);
        let outcome = protocol.run_with_seed(2)?;
        println!(
            "eps = {epsilon:>4}: {:>6} rounds, rounds*eps^2 = {:>6.1}, fraction correct {:.3}",
            outcome.total_rounds,
            outcome.total_rounds as f64 * epsilon * epsilon,
            outcome.fraction_correct
        );
    }
    println!("\nrounds*eps^2 staying (roughly) flat is the 1/eps^2 scaling of Theorem 2.17.");
    Ok(())
}
