//! Majority-consensus demo (Corollary 2.18): a biased committee convinces an
//! uninformed crowd of its majority opinion despite heavy channel noise.
//!
//! ```text
//! cargo run --release --example majority_consensus
//! ```

use breathe::{InitialSet, MajorityConsensusProtocol, Params};
use flip_model::Opinion;

fn main() -> Result<(), flip_model::FlipError> {
    let n = 2_000;
    let epsilon = 0.25;
    let params = Params::practical(n, epsilon)?;

    println!("population n = {n}, eps = {epsilon}");
    println!("| |A| | majority-bias | fraction correct | unanimous |");
    println!("|-----|---------------|------------------|-----------|");

    for (size, bias) in [
        (60usize, 0.25),
        (200, 0.1),
        (200, 0.25),
        (1_000, 0.05),
        (1_000, 0.25),
    ] {
        let initial = InitialSet::with_bias(size, bias)?;
        let protocol = MajorityConsensusProtocol::new(params.clone(), Opinion::One, initial)?;
        let outcome = protocol.run_with_seed(11)?;
        println!(
            "| {size:>4} | {:>13.3} | {:>16.4} | {:>9} |",
            initial.majority_bias(),
            outcome.fraction_correct,
            outcome.all_correct
        );
    }

    println!();
    println!(
        "Corollary 2.18 guarantees consensus when |A| = Omega(log n / eps^2) and the \
         majority-bias is Omega(sqrt(log n / |A|)); small or barely-biased committees sit \
         below that threshold and may fail."
    );
    Ok(())
}
