//! Umbrella crate for the *Breathe before Speaking* reproduction workspace.
//!
//! This crate simply re-exports the member crates so that the repository-level
//! examples and integration tests can use a single dependency:
//!
//! * [`flip_model`] — the Flip communication model substrate (push gossip,
//!   single-bit messages, binary symmetric channel noise).
//! * [`breathe`] — the paper's two-stage noisy broadcast and noisy
//!   majority-consensus protocols.
//! * [`baselines`] — the comparator protocols discussed by the paper.
//! * [`analysis`] — Chernoff/Stirling bounds, theoretical predictions and
//!   empirical estimators.
//! * [`experiments`] — the multi-trial experiment harness used to regenerate
//!   every quantitative claim of the paper.
//!
//! # Example
//!
//! ```
//! use breathe::{BroadcastProtocol, Params};
//! use flip_model::Opinion;
//!
//! let params = Params::practical(500, 0.25).expect("valid parameters");
//! let outcome = BroadcastProtocol::new(params, Opinion::One)
//!     .run_with_seed(42)
//!     .expect("simulation runs");
//! assert!(outcome.fraction_correct > 0.9);
//! ```

pub use analysis;
pub use baselines;
pub use breathe;
pub use experiments;
pub use flip_model;
